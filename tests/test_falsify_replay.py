"""Tests for schedule capture, deterministic replay, and shrinking."""

import pytest

from repro.adversary.base import CrashPlanError
from repro.falsify.campaign import (
    artifact_from_row,
    falsify_run_summary,
    replay_artifact,
)
from repro.falsify.monitors import InvariantViolation
from repro.falsify.replay import (
    ReplayAdversary,
    ReplayMismatch,
    RecordingAdversary,
    ReproArtifact,
    _indices_of,
    normalize_schedule,
    schedule_from_json,
    schedule_size,
    schedule_to_json,
)
from repro.falsify.scenarios import (
    make_adversary,
    monitors_for,
    resolve_scenario,
    run_scenario,
)
from repro.falsify.shrink import probe, shrink_artifact

#: A configuration known to falsify the planted-duplicate fixture (the
#: partitioner's mid-send crash splits the survivors' views).
PLANTED = dict(scenario="planted-duplicate", adversary="partitioner")
PLANTED_N, PLANTED_F, PLANTED_SEED = 10, 2, 1


def planted_row():
    return falsify_run_summary(PLANTED_N, PLANTED_F, PLANTED_SEED, **PLANTED)


def planted_monitors(n=PLANTED_N, f=PLANTED_F):
    return monitors_for(resolve_scenario("planted-duplicate"), n, f)


class TestIndices:
    def test_positions_with_duplicates_consumed(self):
        assert _indices_of(["a", "a"], ["a", "b", "a"]) == (0, 2)
        assert _indices_of(["b"], ["a", "b"]) == (1,)

    def test_unproposed_message_rejected(self):
        with pytest.raises(CrashPlanError, match="never proposed"):
            _indices_of(["c"], ["a", "b"])


class TestNormalize:
    def test_canonical_form(self):
        raw = {"2": {"1": [0, 1]}, 3: {}, 4: {0: (2,)}}
        assert normalize_schedule(raw) == {2: {1: (0, 1)}, 4: {0: (2,)}}

    def test_size_counts_victims(self):
        assert schedule_size({1: {0: (), 2: (1,)}, 5: {3: ()}}) == 3
        assert schedule_size({}) == 0

    def test_json_roundtrip(self):
        schedule = {2: {1: (0, 2)}, 7: {0: ()}}
        data = schedule_to_json(schedule)
        assert schedule_from_json(data) == schedule


class TestRecordAndReplay:
    def test_recorder_captures_applied_schedule(self):
        inner = make_adversary("partitioner", PLANTED_F, PLANTED_SEED)
        recorder = RecordingAdversary(inner)
        with pytest.raises(InvariantViolation):
            run_scenario(
                "planted-duplicate", PLANTED_N, PLANTED_F, PLANTED_SEED,
                adversary=recorder, monitors=planted_monitors(),
            )
        assert schedule_size(recorder.schedule) >= 1
        assert recorder.crashed == inner.crashed  # note_crashes forwarded
        for step in recorder.schedule.values():
            for victim, kept in step.items():
                assert all(isinstance(i, int) for i in kept)

    def test_strict_replay_reproduces_same_violation(self):
        inner = make_adversary("partitioner", PLANTED_F, PLANTED_SEED)
        recorder = RecordingAdversary(inner)
        with pytest.raises(InvariantViolation) as original:
            run_scenario(
                "planted-duplicate", PLANTED_N, PLANTED_F, PLANTED_SEED,
                adversary=recorder, monitors=planted_monitors(),
            )
        with pytest.raises(InvariantViolation) as replayed:
            run_scenario(
                "planted-duplicate", PLANTED_N, PLANTED_F, PLANTED_SEED,
                adversary=ReplayAdversary(recorder.schedule, strict=True),
                monitors=planted_monitors(),
            )
        assert str(replayed.value) == str(original.value)
        assert replayed.value.nodes == original.value.nodes

    def test_clean_replay_matches_recorded_run(self):
        inner = make_adversary("random", 2, 3)
        recorder = RecordingAdversary(inner)
        recorded = run_scenario("gossip", 8, 2, 3, adversary=recorder)
        replayed = run_scenario(
            "gossip", 8, 2, 3,
            adversary=ReplayAdversary(recorder.schedule, strict=True),
        )
        assert replayed.results == recorded.results
        assert replayed.crashed == recorded.crashed
        assert replayed.rounds == recorded.rounds

    def test_strict_replay_rejects_dead_victim(self):
        # Node 0 cannot crash twice; strict replay must notice.
        schedule = {1: {0: ()}, 2: {0: ()}}
        with pytest.raises(ReplayMismatch, match="not.*alive|alive"):
            run_scenario(
                "gossip", 6, 2, 0,
                adversary=ReplayAdversary(schedule, strict=True),
            )

    def test_strict_replay_rejects_out_of_range_index(self):
        # A gossip node proposes 6 sends at n=6; index 99 cannot exist.
        schedule = {1: {0: (99,)}}
        with pytest.raises(ReplayMismatch, match="kept indices"):
            run_scenario(
                "gossip", 6, 1, 0,
                adversary=ReplayAdversary(schedule, strict=True),
            )

    def test_lenient_replay_skips_what_no_longer_applies(self):
        schedule = {1: {0: (99,)}, 2: {0: ()}}
        result = run_scenario(
            "gossip", 6, 2, 0,
            adversary=ReplayAdversary(schedule, strict=False),
        )
        # The bogus index is dropped, the crash still happens once.
        assert result.crashed == {0}


class TestStrategyRoundTrips:
    """Record -> strict replay must be exact for every adaptive strategy,
    including those whose decisions depend on observed fanout."""

    def _round_trip(self, scenario, n, f, seed, adversary):
        recorder = RecordingAdversary(adversary)
        recorded = run_scenario(scenario, n, f, seed, adversary=recorder)
        assert recorded.crashed  # the strategy actually fired
        replayed = run_scenario(
            scenario, n, f, seed,
            adversary=ReplayAdversary(recorder.schedule, strict=True),
        )
        assert replayed.metrics.summary() == recorded.metrics.summary()
        assert list(replayed.metrics.messages_per_round) == list(
            recorded.metrics.messages_per_round)
        assert list(replayed.metrics.bits_per_round) == list(
            recorded.metrics.bits_per_round)
        assert replayed.results == recorded.results
        assert replayed.crashed == recorded.crashed
        assert replayed.rounds == recorded.rounds

    def test_committee_hunter_round_trips(self):
        from random import Random

        from repro.adversary.crash import CommitteeHunter

        self._round_trip("crash", 12, 2, 3, CommitteeHunter(2, Random(4)))

    def test_committee_hunter_mid_send_round_trips(self):
        from random import Random

        from repro.adversary.crash import CommitteeHunter

        self._round_trip(
            "crash", 12, 2, 3,
            CommitteeHunter(2, Random(4), deliver_fraction=0.5))

    def test_budgeted_adaptive_round_trips(self):
        from repro.adversary.crash import BudgetedAdaptiveCrash

        def policy(round_no, proposed, alive, trace, remaining):
            # Crash the lowest alive index mid-send on even rounds.
            if round_no % 2 or not remaining:
                return {}
            victim = min(alive)
            sends = list(proposed.get(victim, []))
            return {victim: sends[: len(sends) // 2]}

        self._round_trip("gossip", 8, 3, 1, BudgetedAdaptiveCrash(3, policy))


class TestArtifact:
    def test_json_roundtrip(self, tmp_path):
        artifact = ReproArtifact(
            scenario="planted-duplicate", n=8, f=1, seed=1,
            invariant="unique-names", schedule={1: {0: (2,)}},
            params={"slots": None}, violation_round=1, nodes=(6, 7),
            detail={"7": [6, 7]}, code_version="abc123",
        )
        assert ReproArtifact.from_json(artifact.to_json()) == artifact
        path = artifact.save(tmp_path / "sub" / "repro.json")
        assert ReproArtifact.load(path) == artifact
        assert "unique-names" in artifact.describe()

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a falsify repro"):
            ReproArtifact.from_json({"kind": "something-else"})

    def test_unsupported_format_rejected(self):
        data = ReproArtifact(
            scenario="crash", n=4, f=0, seed=0, invariant="unique-names",
        ).to_json()
        data["format"] = 99
        with pytest.raises(ValueError, match="unsupported artifact format"):
            ReproArtifact.from_json(data)


class TestProbe:
    def test_clean_execution_returns_none(self):
        assert probe("gossip", 6, 0, {}) is None

    def test_violation_classified(self):
        row = planted_row()
        artifact = artifact_from_row(row, PLANTED)
        outcome = probe(artifact.scenario, artifact.n, artifact.seed,
                        artifact.schedule)
        assert outcome is not None
        assert outcome.invariant == "unique-names"
        round_no, nodes, _detail = outcome.violation_fields()
        assert round_no >= 1 and len(nodes) >= 2


class TestShrink:
    def test_end_to_end_minimizes_and_replays(self):
        row = planted_row()
        assert row["violation"] == "unique-names"
        raw = artifact_from_row(row, PLANTED)
        report = shrink_artifact(raw)
        minimal = report.artifact

        assert report.entries_after <= report.entries_before
        assert minimal.n <= raw.n
        assert schedule_size(minimal.schedule) == minimal.f == 1
        # One mid-send crash with a single leaked message is the
        # minimal counterexample shape for the planted race.
        ((step,),) = [list(stepmap.values())
                      for stepmap in minimal.schedule.values()]
        assert len(step) <= 1

        error = replay_artifact(minimal)
        assert isinstance(error, InvariantViolation)
        assert error.invariant == "unique-names"
        # Deterministic: replaying twice gives the identical failure.
        assert str(replay_artifact(minimal)) == str(error)

    def test_shrunk_artifact_survives_json_roundtrip(self, tmp_path):
        report = shrink_artifact(artifact_from_row(planted_row(), PLANTED))
        path = report.artifact.save(tmp_path / "repro.json")
        loaded = ReproArtifact.load(path)
        assert replay_artifact(loaded) is not None

    def test_shrink_is_bounded(self):
        raw = artifact_from_row(planted_row(), PLANTED)
        report = shrink_artifact(raw, max_executions=1)
        # With a budget of 1 nothing can shrink, but the artifact must
        # still re-record and replay.
        assert report.executions <= 2
        assert replay_artifact(report.artifact) is not None
