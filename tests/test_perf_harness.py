"""Smoke tests for the ``python -m repro perf`` microbenchmark harness."""

import json

from benchmarks import perf


def test_run_perf_schema():
    results = perf.run_perf([16], repeat=1)
    assert set(results) == {"broadcast_n16", "crash_n16"}
    for stats in results.values():
        assert set(stats) == {"wall_s", "rounds", "messages", "msgs_per_s",
                              "phases"}
        assert stats["wall_s"] >= 0
        assert stats["rounds"] > 0
        assert stats["messages"] > 0
        assert stats["msgs_per_s"] > 0
        report = stats["phases"]
        assert report["schema"] == "repro.obs/profile@1"
        assert report["unit"] == "seconds"
        assert set(report["phases"]) == {"plan", "charge", "deliver",
                                         "advance"}
        for phase in report["phases"].values():
            assert phase["calls"] == stats["rounds"]
            assert phase["wall_s"] >= 0


def test_run_perf_workload_filter():
    results = perf.run_perf([16], repeat=1, workloads=["broadcast"])
    assert set(results) == {"broadcast_n16"}

    try:
        perf.run_perf([16], repeat=1, workloads=["broadcast", "typo"])
    except ValueError as error:
        assert "typo" in str(error)
    else:  # pragma: no cover
        raise AssertionError("unknown workload name was accepted")


def test_run_perf_skips_phases_above_threshold(monkeypatch):
    # Above PHASES_MAX_N the extra instrumented (object-path) execution
    # is skipped and the row carries no "phases" key.
    monkeypatch.setattr(perf, "PHASES_MAX_N", 8)
    results = perf.run_perf([16], repeat=1, workloads=["broadcast"])
    assert "phases" not in results["broadcast_n16"]


def test_msgs_per_s_rounds_half_even(monkeypatch):
    # 7 msgs / 2 s = 3.5 msgs/s: floor-truncation said 3, half-even
    # rounding says 4.  Feed deterministic clock readings to pin it.
    walls = iter([0.0, 2.0])
    monkeypatch.setattr(perf.time, "perf_counter", lambda: next(walls))

    class _Metrics:
        total_messages = 7

    class _Result:
        metrics = _Metrics()
        rounds = 1

    stats = perf.time_execution(lambda: _Result(), repeat=1)
    assert stats["msgs_per_s"] == 4


def test_broadcast_heavy_counts():
    result = perf.run_broadcast_heavy(16, rounds=3)
    # Every node broadcasts to all n links each round until it returns.
    assert result.metrics.total_messages == 16 * 16 * 3
    assert result.crashed == set()
    assert sorted(result.results.values()) == list(range(1, 17))


def test_crash_heavy_crashes_somebody():
    result = perf.run_crash_heavy(32)
    assert 0 < len(result.crashed) <= 32 // 2
    assert sum(result.metrics.messages_per_round) == result.metrics.total_messages


def test_main_writes_json(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert perf.main(["--n", "8", "--repeat", "1", "--out", str(out)]) == 0
    results = json.loads(out.read_text())
    assert set(results) == {"broadcast_n8", "crash_n8"}
    stdout = capsys.readouterr().out
    assert "broadcast_n8" in stdout and str(out) in stdout


def test_main_workloads_flag(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert perf.main(["--n", "8", "--repeat", "1", "--out", str(out),
                      "--workloads", "broadcast"]) == 0
    assert set(json.loads(out.read_text())) == {"broadcast_n8"}
    capsys.readouterr()


def test_cli_entry_point(tmp_path):
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parents[1]
    out = tmp_path / "bench_cli.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "perf", "--n", "8", "--repeat", "1",
         "--out", str(out)],
        capture_output=True, text=True, cwd=repo,
        env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert set(json.loads(out.read_text())) == {"broadcast_n8", "crash_n8"}
