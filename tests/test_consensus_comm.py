"""Unit tests for the committee communication layer (vote filtering)."""

from repro.consensus.comm import CommitteeComm, SubVote, exchange
from repro.sim.messages import CostModel, Envelope


def envelope(sender, message, round_no=1):
    return Envelope(sender=sender, to=0, round_no=round_no, message=message)


class TestCollect:
    def make(self):
        comm = CommitteeComm(view=[0, 1, 2], b_max=1)
        comm.step = 5
        return comm

    def test_accepts_matching_votes(self):
        comm = self.make()
        inbox = [envelope(1, SubVote(5, "x", 7, 4))]
        assert comm.collect(inbox, "x") == {1: 7}

    def test_rejects_stale_step(self):
        comm = self.make()
        inbox = [envelope(1, SubVote(4, "x", 7, 4))]
        assert comm.collect(inbox, "x") == {}

    def test_rejects_wrong_kind(self):
        comm = self.make()
        inbox = [envelope(1, SubVote(5, "y", 7, 4))]
        assert comm.collect(inbox, "x") == {}

    def test_rejects_senders_outside_view(self):
        comm = self.make()
        inbox = [envelope(9, SubVote(5, "x", 7, 4))]
        assert comm.collect(inbox, "x") == {}

    def test_first_vote_per_sender_wins(self):
        comm = self.make()
        inbox = [
            envelope(1, SubVote(5, "x", 7, 4)),
            envelope(1, SubVote(5, "x", 8, 4)),
        ]
        assert comm.collect(inbox, "x") == {1: 7}

    def test_ignores_non_subvote_messages(self):
        from tests.test_network import Ping

        comm = self.make()
        inbox = [envelope(1, Ping())]
        assert comm.collect(inbox, "x") == {}


class TestSends:
    def test_one_send_per_view_member(self):
        comm = CommitteeComm(view=[3, 1, 1, 2], b_max=0)
        comm.step = 1
        sends = comm.sends("x", 9, width=4)
        assert [send.to for send in sends] == [1, 2, 3]
        assert all(send.message.value == 9 for send in sends)

    def test_subvote_bit_cost(self):
        cost = CostModel(n=8, namespace=64)
        vote = SubVote(step=1, kind="x", value=1, width=10)
        assert vote.payload_bits(cost) == 10 + 2 * cost.counter_bits


class TestExchange:
    def test_exchange_advances_step_and_round_trips(self):
        comm = CommitteeComm(view=[0], b_max=0)

        def program():
            votes = yield from exchange(comm, "x", 42, width=8)
            return votes

        gen = program()
        sends = next(gen)
        assert comm.step == 1
        assert len(sends) == 1 and sends[0].to == 0
        inbox = [envelope(0, sends[0].message)]
        try:
            gen.send(inbox)
        except StopIteration as stop:
            assert stop.value == {0: 42}
        else:  # pragma: no cover
            raise AssertionError("exchange should finish after one round")
