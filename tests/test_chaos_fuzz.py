"""Robustness fuzzing: honest nodes must shrug off arbitrary garbage.

The chaos-monkey strategy floods the network with well-formed messages
of every protocol type at random steps, kinds, and values.  None of it
is strategically coherent, but all of it must be *filtered* -- by step
counters, view membership, type dispatch, and accept thresholds.  A
missing filter typically shows up as a crashed honest generator, a
premature decision, or a broken invariant; all three are asserted here.
"""

from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import byzantine as byz
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)

UIDS = [7, 19, 55, 102, 200, 333, 404, 512, 640, 777]
NAMESPACE = 2048
CONFIG = ByzantineRenamingConfig(max_byzantine=3)


def assert_guarantees(result, corrupted):
    outputs = result.outputs_by_uid()
    correct = sorted(uid for uid in UIDS if uid not in corrupted)
    assert set(outputs) == set(correct)
    values = [outputs[uid] for uid in correct]
    assert len(set(values)) == len(values)
    assert all(1 <= value <= len(UIDS) for value in values)
    assert values == sorted(values)


class TestChaosMonkey:
    def test_guarantees_hold_under_garbage_flood(self):
        corrupted = {UIDS[2]: byz.make_chaos_monkey(salt=1),
                     UIDS[8]: byz.make_chaos_monkey(salt=2)}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=CONFIG, shared_seed=4, seed=5,
        )
        assert_guarantees(result, corrupted)
        assert result.metrics.byzantine_messages > 0

    def test_garbage_is_charged_to_the_adversary(self):
        corrupted = {UIDS[0]: byz.make_chaos_monkey(volume=20)}
        noisy = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=CONFIG, shared_seed=6, seed=7,
        )
        clean = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine={UIDS[0]: byz.silent},
            config=CONFIG, shared_seed=6, seed=7,
        )
        # The flood does not inflate the protocol's own ledger.
        assert (noisy.metrics.correct_messages
                <= clean.metrics.correct_messages * 1.05)

    def test_garbage_does_not_slow_the_protocol(self):
        corrupted = {UIDS[5]: byz.make_chaos_monkey(volume=10)}
        noisy = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=CONFIG, shared_seed=8, seed=9,
        )
        clean = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine={UIDS[5]: byz.silent},
            config=CONFIG, shared_seed=8, seed=9,
        )
        assert noisy.rounds == clean.rounds

    @settings(max_examples=10, deadline=None)
    @given(shared_seed=st.integers(0, 10**6), salt=st.integers(0, 100))
    def test_fuzz_across_lotteries(self, shared_seed, salt):
        corrupted = {UIDS[4]: byz.make_chaos_monkey(salt=salt, volume=8)}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=CONFIG, shared_seed=shared_seed, seed=shared_seed + 1,
        )
        assert_guarantees(result, corrupted)

    def test_chaos_plus_strategic_adversaries(self):
        """Garbage flooding combined with a real attack."""
        corrupted = {
            UIDS[1]: byz.make_chaos_monkey(salt=3, volume=12),
            UIDS[6]: byz.make_withholder(0.5),
            UIDS[9]: byz.make_equivocator(),
        }
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=CONFIG, shared_seed=10, seed=11,
        )
        assert_guarantees(result, corrupted)
