"""Ledger conservation properties of the metrics accounting.

The engine now batches charges (one ``record_sends`` per broadcast or
per same-message run) and memoizes bit sizes, so these properties pin
what must never drift: the per-round series sum exactly to the running
totals, on every workload shape the repo exercises — the falsification
scenarios under every adversary kind, and the crash-renaming sweep
grid.
"""

from random import Random

import pytest

from repro.analysis.experiments import default_namespace, sample_uids
from repro.core.crash_renaming import run_crash_renaming
from repro.falsify.scenarios import (
    DEFAULT_ADVERSARIES,
    DEFAULT_SCENARIOS,
    make_adversary,
    monitors_for,
    resolve_scenario,
    run_scenario,
)


def assert_ledgers_conserved(metrics):
    assert sum(metrics.messages_per_round) == metrics.total_messages
    assert sum(metrics.bits_per_round) == metrics.total_bits
    assert len(metrics.messages_per_round) == metrics.rounds
    assert len(metrics.bits_per_round) == metrics.rounds
    assert sum(metrics.sends_by_node.values()) == metrics.total_messages
    assert sum(metrics.sends_by_type.values()) == metrics.total_messages
    if metrics.total_messages:
        assert max(metrics.bits_per_round) <= (
            metrics.max_message_bits * metrics.total_messages
        )


@pytest.mark.parametrize("scenario_name", DEFAULT_SCENARIOS)
@pytest.mark.parametrize("adversary_kind", DEFAULT_ADVERSARIES)
def test_scenario_ledgers_conserved(scenario_name, adversary_kind):
    n, f, seed = 16, 4, 11
    scenario = resolve_scenario(scenario_name)
    result = run_scenario(
        scenario_name, n, f, seed,
        adversary=make_adversary(adversary_kind, f, seed),
        monitors=monitors_for(scenario, n, f),
    )
    assert_ledgers_conserved(result.metrics)


@pytest.mark.parametrize("n,f", [(12, 2), (20, 5), (32, 8)])
@pytest.mark.parametrize("seed", [0, 3])
def test_crash_sweep_ledgers_conserved(n, f, seed):
    from repro.analysis.experiments import make_crash_adversary

    namespace = default_namespace(n)
    uids = sample_uids(n, namespace, Random(seed))
    result = run_crash_renaming(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary("hunter", f, Random(seed + 1)),
        seed=seed + 2,
    )
    assert_ledgers_conserved(result.metrics)
    assert result.metrics.byzantine_messages == 0
