"""Tests for the timeline rendering utilities."""

from repro.adversary.crash import ScheduledCrash
from repro.analysis.timeline import describe, render_timeline, round_summaries
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming


def traced_run():
    return run_crash_renaming(
        range(1, 9),
        adversary=ScheduledCrash({4: [2]}),
        config=CrashRenamingConfig(election_constant=4),
        seed=3, trace=True,
    )


class TestRoundSummaries:
    def test_one_summary_per_round(self):
        result = traced_run()
        summaries = round_summaries(result)
        assert len(summaries) == result.rounds
        assert [s.round_no for s in summaries] == list(
            range(1, result.rounds + 1)
        )

    def test_crash_appears_in_its_round(self):
        result = traced_run()
        summaries = round_summaries(result)
        assert summaries[3].crashes == (2,)
        assert all(s.crashes == () for s in summaries if s.round_no != 4)

    def test_terminations_in_final_round(self):
        result = traced_run()
        summaries = round_summaries(result)
        assert len(summaries[-1].terminations) == 7

    def test_message_totals_match_metrics(self):
        result = traced_run()
        assert (sum(s.messages for s in round_summaries(result))
                == result.metrics.correct_messages)


class TestRendering:
    def test_timeline_mentions_crash(self):
        text = render_timeline(traced_run())
        assert "crash:[2]" in text
        assert text.count("\n") == traced_run().rounds - 1

    def test_empty_execution(self):
        result = run_crash_renaming([42], namespace=50)
        assert render_timeline(result) == "(no rounds executed)"

    def test_describe_contains_key_facts(self):
        result = traced_run()
        text = describe(result)
        assert f"{result.rounds} rounds" in text
        assert "1 crashed" in text
        assert "7 correct nodes finished" in text
