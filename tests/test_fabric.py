"""The fabric's robustness contract: lease, crash, reap, resume.

The headline tests kill real worker processes with SIGKILL mid-lease
and prove the campaign still converges to the run set a serial
execution produces — every task settled exactly once, recovered
attempts recorded, fabric@1 events schema-valid throughout.

Crash choreography is deterministic, not sampled: a *gate* driver
blocks on a sentinel file, so the test controls exactly when a worker
is stuck mid-task (SIGKILL it), when the task becomes finishable
(delete the sentinel), and when recovery runs.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.engine import (
    FabricConfig,
    FabricWorker,
    RunRequest,
    RunStore,
    TaskQueue,
    campaign_status,
    enqueue_campaign,
    resume_campaign,
    run_hash,
    run_requests,
    run_workers,
)
from repro.engine.backends.base import (
    SETTLE_LOST,
    TASK_LEASED,
    TASK_SETTLED,
)
from repro.engine.fabric import heartbeat_jitter, spawn_workers
from repro.engine.pool import retry_jitter_delay
from repro.engine.queue import task_request
from repro.engine.sweeps import DRIVERS, SweepSpec, register_driver
from repro.obs import validate_events, validate_fabric_events

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not FORK_AVAILABLE,
    reason="worker processes need fork to inherit test-registered drivers",
)


def _gate_driver(n, f, seed, include_rounds=False, gate="", **params):
    """Block while the sentinel file ``gate`` exists, then run crash."""
    while gate and os.path.exists(gate):
        time.sleep(0.02)
    from repro.analysis.experiments import crash_run_summary

    return crash_run_summary(n, f, seed, include_rounds=include_rounds)


def _boom_driver(n, f, seed, include_rounds=False, **params):
    raise RuntimeError(f"boom seed={seed}")


@pytest.fixture
def drivers():
    register_driver("gate", _gate_driver)
    register_driver("boom", _boom_driver)
    yield
    DRIVERS.pop("gate", None)
    DRIVERS.pop("boom", None)


@pytest.fixture
def store_url(tmp_path):
    return f"sqlite://{tmp_path}/runs.sqlite"


def small_requests():
    return SweepSpec.make("crash", [6, 8], [0, 1], f="1").requests()


def quick_config(store_url, **overrides) -> FabricConfig:
    defaults = dict(store=store_url, campaign="t", lease_ttl=60.0,
                    poll_interval=0.05, isolate=False)
    defaults.update(overrides)
    return FabricConfig(**defaults)


def stored_rows(store_url) -> set:
    """The byte-comparison view of a store: identity + payload, no
    timing metadata (elapsed/created/attempts legitimately differ
    between a crashed-and-recovered run and a serial one)."""
    with RunStore(store_url) as store:
        return {
            (run.hash, run.status,
             json.dumps(run.row, sort_keys=True),
             json.dumps(store.ledger(run.hash)))
            for run in store.query()
        }


def serial_oracle(tmp_path, requests) -> set:
    url = f"sqlite://{tmp_path}/oracle.sqlite"
    with RunStore(url) as store:
        run_requests(requests, store=store)
    return stored_rows(url)


class TestFabricConfig:
    def test_store_resolved_to_absolute_url(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = FabricConfig(store="runs.sqlite")
        assert config.store == f"sqlite://{tmp_path}/runs.sqlite"

    def test_beat_interval_defaults_to_third_of_ttl(self, store_url):
        assert FabricConfig(store=store_url,
                            lease_ttl=30.0).beat_interval == 10.0
        assert FabricConfig(store=store_url, lease_ttl=30.0,
                            heartbeat_interval=5.0).beat_interval == 5.0

    def test_validation(self, store_url):
        with pytest.raises(ValueError, match="lease_ttl"):
            FabricConfig(store=store_url, lease_ttl=0)
        with pytest.raises(ValueError, match="must be < lease_ttl"):
            FabricConfig(store=store_url, lease_ttl=1.0,
                         heartbeat_interval=2.0)
        with pytest.raises(ValueError, match="max_task_attempts"):
            FabricConfig(store=store_url, max_task_attempts=0)

    def test_jitters_are_hashseed_stable_pure_functions(self, store_url):
        from repro.engine.backends.base import QueuedTask

        task = QueuedTask(campaign="c", task_hash="h", seq=3, spec={},
                          state="leased", lease_owner="w",
                          lease_deadline=1.0, attempts=2,
                          result_status=None, created=0.0, settled=None)
        first = [heartbeat_jitter(6.0, task, beat) for beat in (1, 2, 3)]
        assert first == [heartbeat_jitter(6.0, task, b) for b in (1, 2, 3)]
        assert all(4.5 <= delay < 7.5 for delay in first)
        request = RunRequest.make("crash", 8, 1, 5)
        assert retry_jitter_delay(0.25, request) == retry_jitter_delay(
            0.25, request)
        assert retry_jitter_delay(0.0, request) == 0.0


class TestTaskQueue:
    def test_enqueue_uses_content_hashes_and_dedups(self, store_url):
        requests = small_requests()
        total, new = enqueue_campaign(store_url, "t",
                                      requests + requests[:1])
        assert (total, new) == (len(requests), len(requests))
        with RunStore(store_url) as store:
            queue = TaskQueue(store)
            tasks = queue.tasks(campaign="t")
            assert {t.task_hash for t in tasks} == {
                run_hash(r.driver, r.n, r.f, r.seed, r.params)
                for r in requests
            }
            # Spec round-trips to the exact request (same content hash).
            assert {task_request(t) for t in tasks} == set(requests)
            assert queue.outstanding("t") == len(requests)
            assert queue.campaigns() == ["t"]
        # Re-enqueueing the whole campaign is a no-op.
        assert enqueue_campaign(store_url, "t", requests) == (
            len(requests), 0)


class TestWorkerDrain:
    def test_campaign_matches_serial_execution(self, tmp_path, store_url):
        requests = small_requests()
        enqueue_campaign(store_url, "t", requests)
        worker = FabricWorker(quick_config(store_url), name="w0")
        summary = worker.run()
        assert summary["reason"] == "drained"
        assert summary["settled"] == len(requests)
        assert summary["leases_lost"] == 0
        assert stored_rows(store_url) == serial_oracle(tmp_path, requests)
        events = list(worker.events)
        assert validate_events(events) == []
        assert validate_fabric_events(events) == []
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "fabric.worker.start"
        assert kinds[-1] == "fabric.worker.stop"
        assert kinds.count("fabric.task.lease") == len(requests)
        assert kinds.count("fabric.task.settle") == len(requests)
        status = campaign_status(store_url, "t")
        assert status["outstanding"] == 0
        assert status["campaigns"]["t"]["settled"] == len(requests)

    def test_prestored_runs_settle_from_cache(self, store_url):
        requests = small_requests()
        with RunStore(store_url) as store:
            run_requests(requests, store=store)
        enqueue_campaign(store_url, "t", requests)
        worker = FabricWorker(quick_config(store_url), name="w0")
        summary = worker.run()
        assert summary["settled"] == len(requests)
        assert summary["cached"] == len(requests)
        settles = [e for e in worker.events
                   if e["kind"] == "fabric.task.settle"]
        assert all(e["data"]["cached"] for e in settles)
        # Cached settlement reports the stored row's attempt count.
        assert all(e["data"]["run_attempts"] == 1 for e in settles)

    def test_failed_run_settles_task_as_failed(self, drivers, store_url):
        requests = [RunRequest.make("boom", 4, 0, 0),
                    RunRequest.make("crash", 6, 1, 0)]
        enqueue_campaign(store_url, "t", requests)
        summary = FabricWorker(quick_config(store_url), name="w0").run()
        assert summary["settled"] == 1
        assert summary["failed"] == 1
        with RunStore(store_url) as store:
            failed = store.query(status="failed")
            assert len(failed) == 1
            assert "boom seed=0" in failed[0].error
            # The in-lease retry ran: both attempts are recorded.
            assert failed[0].attempts == 2
            assert "--- first attempt ---" in failed[0].error
            counts = TaskQueue(store).counts("t")["t"]
        assert counts["settled"] == 1 and counts["failed"] == 1

    def test_poisoned_task_recorded_as_failed_run(self, store_url):
        requests = small_requests()[:1]
        enqueue_campaign(store_url, "t", requests)
        config = quick_config(store_url, max_task_attempts=2)
        with RunStore(store_url) as store:
            queue = TaskQueue(store)
            # Burn through the attempt budget: each claim+force-reap
            # cycle is one crashed-worker generation.
            for _ in range(config.max_task_attempts):
                assert queue.claim("crasher", 60.0, campaign="t")
                queue.reap("t", force=True)
        summary = FabricWorker(config, name="w0").run()
        assert summary["failed"] == 1 and summary["settled"] == 0
        with RunStore(store_url) as store:
            run = store.query(status="failed")[0]
            assert "poisoned" in run.error
            assert run.attempts == config.max_task_attempts + 1
            task = TaskQueue(store).tasks(campaign="t")[0]
        assert task.state == "failed" and task.result_status == "failed"

    def test_graceful_stop_finishes_task_in_hand(self, store_url):
        requests = small_requests()
        enqueue_campaign(store_url, "t", requests)
        worker = FabricWorker(quick_config(store_url), name="w0")
        # Stop after the first settle: the loop must exit without
        # claiming more, leaving the rest pending for another worker.
        original = worker._settled

        def stop_after_first(*args, **kwargs):
            original(*args, **kwargs)
            worker.stop("sigterm")

        worker._settled = stop_after_first
        summary = worker.run()
        assert summary["reason"] == "sigterm"
        assert summary["settled"] == 1
        status = campaign_status(store_url, "t")
        assert status["campaigns"]["t"]["pending"] == len(requests) - 1
        assert status["campaigns"]["t"]["leased"] == 0
        # A second worker drains the remainder.
        summary2 = FabricWorker(quick_config(store_url), name="w1").run()
        assert summary2["settled"] == len(requests) - 1

    def test_lost_lease_settlement_is_noop(self, store_url):
        """A worker that lost its lease mid-run must not double-settle."""
        requests = small_requests()[:1]
        enqueue_campaign(store_url, "t", requests)
        config = quick_config(store_url)
        worker = FabricWorker(config, name="slow")
        with RunStore(config.store) as store:
            queue = TaskQueue(store)
            task = queue.claim("slow", config.lease_ttl, campaign="t")
            # While "slow" executes, the reaper hands the task to a
            # recovery worker; "slow" comes back and tries to settle a
            # lease it no longer holds.
            queue.reap("t", force=True)
            recovered = queue.claim("fast", config.lease_ttl, campaign="t")
            outcome = queue.settle(task, "slow", result_status="ok")
            assert outcome == SETTLE_LOST
            assert queue.settle(recovered, "fast",
                                result_status="ok") == "settled"
            final = queue.get("t", task.task_hash)
        assert final.state == TASK_SETTLED
        worker._settled(task, "settled", outcome, cached=False,
                        run_attempts=1, started=time.perf_counter())
        assert worker.leases_lost == 1 and worker.settled == 0


@needs_fork
class TestCrashRecovery:
    """Real SIGKILL against real worker processes."""

    def _requests(self, gate_path):
        return [RunRequest.make("gate", 6, 1, 0, gate=str(gate_path)),
                RunRequest.make("crash", 6, 1, 1),
                RunRequest.make("crash", 8, 1, 0)]

    def _wait_for_lease(self, store_url, campaign, task_hash,
                        timeout=30.0):
        deadline = time.monotonic() + timeout
        with RunStore(store_url) as store:
            queue = TaskQueue(store)
            while time.monotonic() < deadline:
                task = queue.get(campaign, task_hash)
                if task is not None and task.state == TASK_LEASED:
                    return task
                time.sleep(0.05)
        raise AssertionError(f"task {task_hash} never leased")

    def test_sigkill_mid_lease_recovered_by_second_worker(
            self, drivers, tmp_path, store_url):
        gate = tmp_path / "gate"
        gate.touch()
        requests = self._requests(gate)
        enqueue_campaign(store_url, "t", requests)
        gate_hash = run_hash("gate", 6, 1, 0, {"gate": str(gate)})
        config = quick_config(store_url, lease_ttl=1.5,
                              events_dir=str(tmp_path / "events"))
        [(victim, receiver)] = spawn_workers(config, 1)
        try:
            leased = self._wait_for_lease(store_url, "t", gate_hash)
            assert leased.attempts == 1
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(30.0)
            assert victim.exitcode == -signal.SIGKILL
        finally:
            receiver.close()
            if victim.is_alive():  # pragma: no cover - cleanup
                victim.kill()
                victim.join()
        gate.unlink()  # the task is finishable from now on

        # Wait out the lease so the recovery worker's own reaper (not
        # a force-reap) reclaims the task — the SIGKILLed worker sends
        # no heartbeats, so the lease must expire on its own.
        with RunStore(store_url) as store:
            task = TaskQueue(store).get("t", gate_hash)
            assert task.state == TASK_LEASED  # died holding the lease
            time.sleep(max(0.0, task.lease_deadline - time.time()) + 0.1)

        recovery = FabricWorker(config, name="recovery")
        summary = recovery.run()
        assert summary["reason"] == "drained"
        assert summary["settled"] >= 1  # at least the gated task

        events = list(recovery.events)
        assert validate_fabric_events(events) == []
        reaps = [e for e in events if e["kind"] == "fabric.task.reap"]
        assert any(e["data"]["task"] == gate_hash for e in reaps)

        with RunStore(store_url) as store:
            queue = TaskQueue(store)
            assert queue.outstanding("t") == 0
            recovered = queue.get("t", gate_hash)
            assert recovered.state == TASK_SETTLED
            assert recovered.attempts == 2  # the crashed lease + ours
            assert len(store.query()) == len(requests)  # no duplicates
        assert stored_rows(store_url) == serial_oracle(tmp_path, requests)

    def test_kill_every_worker_then_resume(self, drivers, tmp_path,
                                           store_url):
        """The whole-host-crash drill: no surviving worker, stale
        leases everywhere, ``resume`` completes the campaign."""
        gate = tmp_path / "gate"
        gate.touch()
        requests = self._requests(gate)
        enqueue_campaign(store_url, "t", requests)
        gate_hash = run_hash("gate", 6, 1, 0, {"gate": str(gate)})
        config = quick_config(store_url, lease_ttl=30.0)
        pairs = spawn_workers(config, 2)
        try:
            self._wait_for_lease(store_url, "t", gate_hash)
            for process, _ in pairs:
                os.kill(process.pid, signal.SIGKILL)
            for process, _ in pairs:
                process.join(30.0)
        finally:
            for process, receiver in pairs:
                receiver.close()
                if process.is_alive():  # pragma: no cover - cleanup
                    process.kill()
                    process.join()
        gate.unlink()

        # The long lease has NOT expired — resume's force-reap is what
        # reclaims it (safe: settlement is owner-guarded).
        summaries = resume_campaign(config, 1)
        assert summaries[0]["reason"] == "drained"
        with RunStore(store_url) as store:
            assert TaskQueue(store).outstanding("t") == 0
            assert len(store.query()) == len(requests)
        assert stored_rows(store_url) == serial_oracle(tmp_path, requests)

    def test_sigterm_drains_gracefully(self, drivers, tmp_path, store_url):
        """SIGTERM mid-task: the worker finishes the task in hand,
        settles it, and exits without claiming the rest."""
        gate = tmp_path / "gate"
        gate.touch()
        requests = self._requests(gate)
        enqueue_campaign(store_url, "t", requests)
        gate_hash = run_hash("gate", 6, 1, 0, {"gate": str(gate)})
        config = quick_config(store_url, lease_ttl=60.0)
        [(worker, receiver)] = spawn_workers(config, 1)
        try:
            self._wait_for_lease(store_url, "t", gate_hash)
            os.kill(worker.pid, signal.SIGTERM)
            time.sleep(0.2)  # the drain must wait for the gated task
            assert worker.is_alive()
            gate.unlink()
            summary = receiver.recv()
            worker.join(30.0)
        finally:
            receiver.close()
            if worker.is_alive():  # pragma: no cover - cleanup
                worker.kill()
                worker.join()
        assert summary["reason"] == "sigterm"
        assert summary["settled"] >= 1
        with RunStore(store_url) as store:
            task = TaskQueue(store).get("t", gate_hash)
            assert task.state == TASK_SETTLED  # finished, not abandoned
            assert TaskQueue(store).counts("t")["t"]["leased"] == 0

    def test_two_workers_split_a_campaign(self, tmp_path, store_url):
        requests = SweepSpec.make("crash", [6, 8], [0, 1, 2],
                                  f="1").requests()
        enqueue_campaign(store_url, "t", requests)
        summaries = run_workers(quick_config(store_url), 2)
        assert sum(s["settled"] for s in summaries) == len(requests)
        assert all(s["reason"] == "drained" for s in summaries)
        assert stored_rows(store_url) == serial_oracle(tmp_path, requests)


class TestHeartbeat:
    def test_heartbeat_keeps_long_task_leased(self, drivers, tmp_path,
                                              store_url):
        """A task outliving its lease TTL survives via renewal: the
        reaper never reclaims it while the worker is alive."""
        gate = tmp_path / "gate"
        gate.touch()
        requests = [RunRequest.make("gate", 4, 0, 0, gate=str(gate))]
        enqueue_campaign(store_url, "t", requests)
        config = quick_config(store_url, lease_ttl=0.6,
                              heartbeat_interval=0.1)
        worker = FabricWorker(config, name="w0")
        thread = threading.Thread(target=worker.run)
        thread.start()
        try:
            # Hold the gate for several TTLs; a third party reaping the
            # whole time must find nothing expired.
            reap_attempts = []
            with RunStore(store_url) as store:
                queue = TaskQueue(store)
                deadline = time.monotonic() + 3 * config.lease_ttl
                while time.monotonic() < deadline:
                    reap_attempts.extend(queue.reap("t"))
                    time.sleep(0.05)
        finally:
            gate.unlink()
            thread.join(30.0)
        assert not thread.is_alive()
        assert reap_attempts == []  # renewal always beat expiry
        beats = [e for e in worker.events
                 if e["kind"] == "fabric.task.heartbeat"]
        assert len(beats) >= 2
        assert all(e["data"]["renewed"] for e in beats)
        assert worker.summary()["settled"] == 1
