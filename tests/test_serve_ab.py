"""A/B, determinism, and degradation tests for the serving layer.

The load on the concurrent service is compared against a *serial
reference*: the same trace routed through the same hash, batched by
the same pure batch plan, executed shard by shard in one thread.
Thread-pool concurrency and the event loop must not change a single
counted result — same batch boundaries, same per-epoch protocol
rounds/messages/bits, same final assignment.
"""

import asyncio

import pytest

from repro.analysis.experiments import EXPERIMENT_ELECTION_CONSTANT
from repro.core.crash_renaming import CrashRenamingConfig
from repro.obs import EventRecorder, validate_events
from repro.serve.batching import BatchPolicy, plan_batches
from repro.serve.driver import serve_run_summary
from repro.serve.loadgen import (
    LoadProfile,
    execute_profile,
    generate_trace,
    run_load,
    trace_digest,
)
from repro.serve.obs import validate_serve_events
from repro.serve.service import RenamingService
from repro.serve.sharding import LOOKUP, Shard, ShardOp, shard_of

CONFIG = CrashRenamingConfig(election_constant=EXPERIMENT_ELECTION_CONSTANT)

#: Small but structurally rich: several shards, several epochs per
#: shard, all three request kinds, deadline and size closes.
PROFILE = LoadProfile(clients=40, requests=1_500, shards=3, max_batch=16,
                      max_wait=0.002, arrival_rate=20_000.0, namespace=5_000,
                      seed=3)

OMISSION = [{"kind": "omission", "p": 1.0}]


def epoch_counts(histories):
    """Per-shard ``(rounds, messages, bits)`` tuples per epoch."""
    return [[(r.rounds, r.messages, r.bits) for r in history]
            for history in histories]


def run_concurrent(profile, shard_faults=None, yield_every=256):
    """Play the profile against a real service; return counted state."""

    async def scenario():
        service = RenamingService(
            shards=profile.shards, namespace=profile.namespace,
            seed=profile.seed, max_batch=profile.max_batch,
            max_wait=profile.max_wait, config=CONFIG,
            shard_faults=shard_faults,
        )
        async with service:
            load = await run_load(service, generate_trace(profile),
                                  yield_every=yield_every)
            return {
                "load": load,
                "boundaries": service.boundaries(),
                "epochs": epoch_counts(service.histories()),
                "assignment": service.assignment(),
                "stats": service.stats(),
                "per_shard": service.per_shard_stats(),
            }

    return asyncio.run(scenario())


def run_serial_reference(profile, shard_faults=None):
    """The same workload, one thread, no event loop, no service."""
    policy = BatchPolicy(max_batch=profile.max_batch,
                         max_wait=profile.max_wait)
    streams = {index: [] for index in range(profile.shards)}
    submitted = 0
    for op in generate_trace(profile):
        if op.kind == LOOKUP:
            continue
        # Mirror the service's numbering: submission order over the
        # state-changing requests only (lookups never get an op).
        shard = shard_of(op.uid, profile.shards)
        streams[shard].append(
            (ShardOp(submitted, op.kind, op.uid), op.arrival)
        )
        submitted += 1
    boundaries, histories, assignment = [], [], {}
    for index in range(profile.shards):
        shard = Shard(
            index, profile.shards, namespace=profile.namespace,
            seed=profile.seed, config=CONFIG,
            fault_spec=(shard_faults or {}).get(index),
        )
        batches = plan_batches(index, streams[index], policy)
        for batch in batches:
            try:
                shard.execute(batch.ops)
            except Exception:
                pass  # degraded batch: rolled back, keep going
        boundaries.append([batch.boundary() for batch in batches])
        histories.append(shard.directory.history)
        assignment.update(shard.global_assignment())
    return {
        "boundaries": boundaries,
        "epochs": epoch_counts(histories),
        "assignment": assignment,
    }


class TestTraceDeterminism:
    def test_same_profile_same_trace(self):
        first = generate_trace(PROFILE)
        second = generate_trace(PROFILE)
        assert first == second
        assert trace_digest(first) == trace_digest(second)

    def test_different_seed_different_trace(self):
        assert generate_trace(PROFILE) != generate_trace(
            PROFILE.scaled(seed=4)
        )

    def test_trace_is_feasible(self):
        members = set()
        for op in generate_trace(PROFILE):
            if op.kind == "rename":
                members.add(op.uid)
            elif op.kind == "release":
                members.discard(op.uid)
        # Never more distinct active identities than clients.
        assert len(members) <= PROFILE.clients


class TestConcurrentMatchesSerial:
    def test_counted_results_are_identical(self):
        concurrent = run_concurrent(PROFILE)
        serial = run_serial_reference(PROFILE)
        assert concurrent["boundaries"] == serial["boundaries"]
        assert concurrent["epochs"] == serial["epochs"]
        assert concurrent["assignment"] == serial["assignment"]

    def test_identical_under_faults_too(self):
        faults = {1: OMISSION}
        concurrent = run_concurrent(PROFILE, shard_faults=faults)
        serial = run_serial_reference(PROFILE, shard_faults=faults)
        assert concurrent["boundaries"] == serial["boundaries"]
        assert concurrent["epochs"] == serial["epochs"]
        assert concurrent["assignment"] == serial["assignment"]

    def test_event_loop_schedule_does_not_change_results(self):
        # Different yield cadences interleave dispatch and epoch
        # completion differently; counted state must not notice.
        coarse = run_concurrent(PROFILE, yield_every=1024)
        fine = run_concurrent(PROFILE, yield_every=16)
        assert coarse["boundaries"] == fine["boundaries"]
        assert coarse["epochs"] == fine["epochs"]
        assert coarse["assignment"] == fine["assignment"]

    def test_two_service_runs_are_identical(self):
        first = run_concurrent(PROFILE)
        second = run_concurrent(PROFILE)
        assert first["boundaries"] == second["boundaries"]
        assert first["epochs"] == second["epochs"]
        assert first["assignment"] == second["assignment"]
        assert first["stats"] == second["stats"]


class TestDegradation:
    def test_faulty_shard_degrades_while_others_serve(self):
        result = run_concurrent(PROFILE, shard_faults={0: OMISSION})
        load = result["load"]
        rows = {row["shard"]: row for row in result["per_shard"]}
        # Shard 0 fails every multi-member epoch and rolls back each
        # time.  (A single-member epoch legitimately survives total
        # omission -- one node renames itself without messages -- so
        # membership can linger at one, never above.)
        assert rows[0]["failures"] > 0
        assert rows[0]["members"] <= 1
        assert load.degraded > 0
        # The other shards kept renaming: requests resolved, members
        # named, global ids unique.
        assert load.renamed > 0
        assert rows[1]["epochs"] > 0 and rows[2]["epochs"] > 0
        values = list(result["assignment"].values())
        assert len(set(values)) == len(values)
        assert load.errors == 0

    def test_degraded_shard_requests_fail_fast_not_stall(self):
        # Every future resolves (drain returned, gather finished) --
        # no event-loop stall, no hung request.
        result = run_concurrent(PROFILE, shard_faults={0: OMISSION})
        load = result["load"]
        assert (load.renamed + load.rename_misses + load.degraded
                + load.released) == load.renames + load.releases

    def test_lookups_on_healthy_shards_survive_degradation(self):
        async def scenario():
            service = RenamingService(
                shards=2, namespace=5_000, seed=1, max_batch=8,
                max_wait=None, config=CONFIG,
                shard_faults={0: OMISSION},
            )
            async with service:
                healthy = [uid for uid in range(1, 200)
                           if shard_of(uid, 2) == 1][:8]
                faulty = [uid for uid in range(1, 200)
                          if shard_of(uid, 2) == 0][:8]
                futures = [service.submit("rename", uid, 0.0)
                           for uid in healthy + faulty]
                await service.drain()
                results = await asyncio.gather(*futures,
                                               return_exceptions=True)
                return service, healthy, results

        service, healthy, results = asyncio.run(scenario())
        for uid in healthy:
            assert service.lookup(uid) is not None
        degraded = [r for r in results if isinstance(r, Exception)]
        assert len(degraded) == 8


class TestDriverAndEvents:
    def test_serve_driver_row(self):
        row = serve_run_summary(24, 1, 0, requests=600, shards=2,
                                max_batch=16)
        assert row["driver"] == "serve"
        assert row["unique"] is True
        assert row["degraded"] > 0           # shard 0 under omission
        assert row["failed_epochs"] > 0
        assert row["epochs"] > 0             # shard 1 kept serving
        assert row["requests"] == 600
        assert row["throughput_rps"] > 0
        assert len(row["trace_sha256"]) == 64
        assert "messages_per_round" not in row

    def test_driver_ledgers_sum_to_totals(self):
        row = serve_run_summary(24, 0, 0, requests=600, shards=2,
                                max_batch=16)
        ledgered = serve_run_summary(24, 0, 0, requests=600, shards=2,
                                     max_batch=16, include_rounds=True)
        assert sum(ledgered["messages_per_round"]) == row["messages"]
        assert sum(ledgered["bits_per_round"]) == row["bits"]

    def test_driver_replays_bit_exactly(self):
        first = serve_run_summary(24, 1, 7, requests=600, shards=2)
        second = serve_run_summary(24, 1, 7, requests=600, shards=2)
        for key, value in first.items():
            if key.endswith("_ms") or key in ("wall_s", "throughput_rps"):
                continue  # wall-clock measurements may differ
            assert second[key] == value, key

    def test_driver_validates_f(self):
        with pytest.raises(ValueError, match="shards"):
            serve_run_summary(24, 5, 0, shards=2)

    def test_execute_profile_events_are_schema_valid(self):
        recorder = EventRecorder()
        report = execute_profile(
            PROFILE.scaled(requests=400),
            shard_faults={0: OMISSION}, observer=recorder,
        )
        events = recorder.events()
        assert validate_events(events) == []
        assert validate_serve_events(events) == []
        kinds = {event["kind"] for event in events}
        assert "serve.epoch.failed" in kinds
        assert "serve.shard.degraded" in kinds
        assert report["unique"] is True
