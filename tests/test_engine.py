"""Tests for the parallel sweep engine and its SQLite run store."""

import json

import pytest

from repro.analysis.experiments import crash_run_summary
from repro.analysis.tables import plain_table
from repro.engine import pool as engine_pool
from repro.engine.pool import run_requests
from repro.engine.store import RunStore, code_version, run_hash
from repro.engine.sweeps import (
    DRIVERS,
    RunRequest,
    SweepSpec,
    driver_names,
    evaluate_f,
    register_driver,
    table1_requests,
)
from repro.__main__ import main, parse_int_list

SMALL = SweepSpec.make("crash", [6, 8], [0, 1], f="n//4")


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as opened:
        yield opened


class TestRequests:
    def test_params_canonicalized(self):
        a = RunRequest.make("crash", 8, 1, 0, adversary="hunter", namespace=99)
        b = RunRequest.make("crash", 8, 1, 0, namespace=99, adversary="hunter")
        assert a == b
        assert a.params == (("adversary", "hunter"), ("namespace", 99))

    def test_non_scalar_params_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            RunRequest.make("crash", 8, 1, 0, config={"nested": 1})

    def test_spec_expands_cross_product(self):
        requests = SMALL.requests()
        assert [(r.n, r.f, r.seed) for r in requests] == [
            (6, 1, 0), (6, 1, 1), (8, 2, 0), (8, 2, 1),
        ]

    def test_evaluate_f(self):
        assert evaluate_f("0", 64) == 0
        assert evaluate_f("n//8", 64) == 8
        assert evaluate_f("max(1, n//4)", 2) == 1
        assert evaluate_f("ceil(log2(n))", 9) == 4
        with pytest.raises(ValueError, match="bad fault-budget"):
            evaluate_f("__import__('os')", 4)

    def test_driver_registry(self):
        assert {"crash", "byzantine", "obg", "gossip", "balls",
                "reelection"} <= set(driver_names())

    def test_table1_requests_cover_all_families(self):
        requests = table1_requests(10, 1, seed=1)
        assert [r.driver for r in requests] == [
            "crash", "obg", "balls", "gossip", "byzantine", "byzantine",
        ]


class TestHashing:
    def test_stable_and_sensitive(self):
        request = RunRequest.make("crash", 8, 1, 0, adversary="hunter")
        h = run_hash(request.driver, request.n, request.f, request.seed,
                     request.params, "v1")
        again = run_hash("crash", 8, 1, 0,
                         (("adversary", "hunter"),), "v1")
        assert h == again
        assert h != run_hash("crash", 8, 1, 1,
                             (("adversary", "hunter"),), "v1")
        assert h != run_hash("crash", 8, 1, 0,
                             (("adversary", "hunter"),), "v2")

    def test_code_version_is_short_hex(self):
        version = code_version()
        assert len(version) == 16
        int(version, 16)


class TestStore:
    def test_roundtrip_with_ledger(self, store):
        store.put(
            "h1", driver="crash", n=8, f=1, seed=0, params={"a": 1},
            version="v", status="ok", row={"messages": 7, "ok": True},
            elapsed=0.5, messages_per_round=[3, 4], bits_per_round=[30, 40],
        )
        stored = store.get("h1")
        assert stored.ok
        assert stored.row == {"messages": 7, "ok": True}
        assert stored.params == {"a": 1}
        assert store.ledger("h1") == ([3, 4], [30, 40])

    def test_missing_is_none(self, store):
        assert store.get("nope") is None
        assert store.ledger("nope") is None

    def test_empty_ledger_distinct_from_no_ledger(self, store):
        # A zero-round run stored with an *empty* ledger must not decay
        # into "stored without ledgers" across a round trip.
        store.put("zero", driver="crash", n=1, f=0, seed=0, params={},
                  version="v", status="ok", row={"messages": 0},
                  messages_per_round=[], bits_per_round=[])
        store.put("bare", driver="crash", n=1, f=0, seed=1, params={},
                  version="v", status="ok", row={"messages": 0})
        assert store.ledger("zero") == ([], [])
        assert store.ledger("bare") is None
        assert store.get("zero").has_ledger
        assert not store.get("bare").has_ledger

    def test_put_rejects_lone_ledger_side(self, store):
        with pytest.raises(ValueError, match="h1.*bits_per_round"):
            store.put("h1", driver="crash", n=8, f=1, seed=0, params={},
                      version="v", status="ok", row={},
                      messages_per_round=[3, 4])
        with pytest.raises(ValueError, match="h1.*messages_per_round"):
            store.put("h1", driver="crash", n=8, f=1, seed=0, params={},
                      version="v", status="ok", row={},
                      bits_per_round=[30, 40])
        # Nothing was silently stored without its ledger.
        assert store.get("h1") is None

    def test_put_rejects_ledger_length_mismatch(self, store):
        with pytest.raises(ValueError, match="h1.*length mismatch"):
            store.put("h1", driver="crash", n=8, f=1, seed=0, params={},
                      version="v", status="ok", row={},
                      messages_per_round=[3, 4, 5], bits_per_round=[30])
        assert store.get("h1") is None

    def test_legacy_store_without_has_ledger_migrates(self, tmp_path):
        import sqlite3

        path = tmp_path / "legacy.sqlite"
        connection = sqlite3.connect(path)
        connection.executescript("""
            CREATE TABLE runs (
                hash TEXT PRIMARY KEY, driver TEXT NOT NULL,
                n INTEGER NOT NULL, f INTEGER NOT NULL,
                seed INTEGER NOT NULL, params TEXT NOT NULL,
                code_version TEXT NOT NULL, status TEXT NOT NULL,
                row TEXT, error TEXT, elapsed REAL, created REAL NOT NULL
            );
            CREATE TABLE ledgers (
                run_hash TEXT NOT NULL, round INTEGER NOT NULL,
                messages INTEGER NOT NULL, bits INTEGER NOT NULL,
                PRIMARY KEY (run_hash, round)
            );
            CREATE TABLE telemetry (
                run_hash TEXT NOT NULL, key TEXT NOT NULL,
                value TEXT NOT NULL, created REAL NOT NULL,
                PRIMARY KEY (run_hash, key)
            );
            INSERT INTO runs VALUES
                ('with', 'crash', 8, 1, 0, '{}', 'v', 'ok',
                 '{"messages": 7}', NULL, 0.1, 1.0),
                ('without', 'crash', 8, 1, 1, '{}', 'v', 'ok',
                 '{"messages": 7}', NULL, 0.1, 2.0);
            INSERT INTO ledgers VALUES ('with', 1, 3, 30), ('with', 2, 4, 40);
        """)
        connection.commit()
        connection.close()

        with RunStore(path) as migrated:
            assert migrated.ledger("with") == ([3, 4], [30, 40])
            assert migrated.ledger("without") is None
            assert migrated.get("with").has_ledger
            assert not migrated.get("without").has_ledger

    def test_failed_runs_and_query_filters(self, store):
        store.put("ok1", driver="crash", n=8, f=1, seed=0, params={},
                  version="v", status="ok", row={"messages": 1})
        store.put("bad", driver="obg", n=8, f=1, seed=1, params={},
                  version="v", status="failed", error="boom")
        assert [r.hash for r in store.query(status="failed")] == ["bad"]
        assert [r.hash for r in store.query(driver="crash")] == ["ok1"]
        assert store.stats()["total"] == 2
        assert store.stats()["failed"] == 1
        assert store.query(status="failed")[0].error == "boom"


class TestExecution:
    def test_serial_matches_direct_driver_calls(self):
        rows = [result.row for result in run_requests(SMALL.requests())]
        direct = [crash_run_summary(n, n // 4, seed)
                  for n in (6, 8) for seed in (0, 1)]
        assert rows == direct

    def test_parallel_rows_byte_identical_to_serial(self):
        serial = run_requests(SMALL.requests())
        parallel = run_requests(SMALL.requests(), jobs=2, chunksize=1)
        assert [r.row for r in parallel] == [r.row for r in serial]
        assert (plain_table([r.row for r in parallel])
                == plain_table([r.row for r in serial]))
        assert ([r.messages_per_round for r in parallel]
                == [r.messages_per_round for r in serial])

    def test_second_invocation_all_cache_hits(self, store, monkeypatch):
        first = run_requests(SMALL.requests(), store=store)
        assert all(not result.cached for result in first)

        def explode(request):
            raise AssertionError(f"executed {request} despite warm store")

        monkeypatch.setattr(engine_pool, "execute_request", explode)
        second = run_requests(SMALL.requests(), store=store)
        assert all(result.cached for result in second)
        assert [r.row for r in second] == [r.row for r in first]
        assert ([r.messages_per_round for r in second]
                == [r.messages_per_round for r in first])

    def test_duplicate_requests_execute_once(self, monkeypatch):
        calls = []
        real = engine_pool.execute_request

        def counting(request):
            calls.append(request)
            return real(request)

        monkeypatch.setattr(engine_pool, "execute_request", counting)
        request = RunRequest.make("crash", 6, 1, 0)
        results = run_requests([request, request, request])
        assert len(calls) == 1
        assert [r.row for r in results] == [results[0].row] * 3

    def test_driver_failure_isolated_and_recorded(self, store):
        register_driver("boom", _boom_driver)
        try:
            requests = [RunRequest.make("crash", 6, 0, 0),
                        RunRequest.make("boom", 6, 0, 0),
                        RunRequest.make("crash", 6, 0, 1)]
            results = run_requests(requests, store=store)
            assert [r.status for r in results] == ["ok", "failed", "ok"]
            assert "deliberate failure" in results[1].error
            stored = store.query(status="failed")
            assert len(stored) == 1 and stored[0].driver == "boom"
            # Failed runs are recorded but not served as cache hits.
            retry = run_requests(requests, store=store)
            assert [r.cached for r in retry] == [True, False, True]
        finally:
            DRIVERS.pop("boom", None)


def _boom_driver(n, f, seed, include_rounds=False, **params):
    raise RuntimeError("deliberate failure")


def _zero_rounds_driver(n, f, seed, include_rounds=False, **params):
    # A legitimately zero-round run: the ledger exists and is empty.
    return {"messages": 0, "messages_per_round": [], "bits_per_round": []}


def _ledgerless_driver(n, f, seed, include_rounds=False, **params):
    return {"messages": 5}


class TestSettleLedgerIntegrity:
    def test_duplicate_requests_write_store_once(self, store):
        puts = []
        real_put = store.put

        def counting_put(*args, **kwargs):
            puts.append(args)
            return real_put(*args, **kwargs)

        store.put = counting_put
        request = RunRequest.make("crash", 6, 1, 0)
        results = run_requests([request] * 4, store=store)
        # K deduplicated followers share one content hash: one backend
        # write, not K identical writes + K ledger DELETE round trips.
        assert len(puts) == 1
        assert all(result.ok and not result.cached for result in results)
        assert [r.row for r in results] == [results[0].row] * 4
        assert all(r.messages_per_round == results[0].messages_per_round
                   for r in results)
        # And the store round trip still serves every duplicate.
        del store.put
        cached = run_requests([request] * 4, store=store)
        assert all(result.cached for result in cached)
        assert [r.row for r in cached] == [r.row for r in results]

    def test_empty_ledger_survives_cache_round_trip(self, store):
        register_driver("zero-rounds", _zero_rounds_driver)
        register_driver("ledgerless", _ledgerless_driver)
        try:
            requests = [RunRequest.make("zero-rounds", 4, 0, 0),
                        RunRequest.make("ledgerless", 4, 0, 0)]
            fresh = run_requests(requests, store=store)
            assert fresh[0].messages_per_round == []
            assert fresh[0].bits_per_round == []
            assert fresh[1].messages_per_round is None
            assert fresh[1].bits_per_round is None

            cached = run_requests(requests, store=store)
            assert all(result.cached for result in cached)
            # [] stays [] and None stays None — a zero-round run is not
            # conflated with a run stored without ledgers.
            assert cached[0].messages_per_round == []
            assert cached[0].bits_per_round == []
            assert cached[1].messages_per_round is None
            assert cached[1].bits_per_round is None
        finally:
            DRIVERS.pop("zero-rounds", None)
            DRIVERS.pop("ledgerless", None)


class TestCli:
    def test_parse_int_list(self):
        assert parse_int_list("16,32,64") == [16, 32, 64]
        assert parse_int_list("0-4") == [0, 1, 2, 3, 4]
        assert parse_int_list("0-2,7") == [0, 1, 2, 7]
        with pytest.raises(ValueError):
            parse_int_list(",")

    def test_sweep_then_cached_rerun_then_runs(self, tmp_path, capsys):
        store_path = str(tmp_path / "runs.sqlite")
        argv = ["sweep", "--driver", "crash", "--n", "6,8", "--seeds",
                "0-1", "--f", "n//4", "--store", store_path]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "4 executed, 0 cached, 0 failed" in first.err

        assert main(argv) == 0
        second = capsys.readouterr()
        assert "0 executed, 4 cached, 0 failed" in second.err
        assert first.out == second.out

        assert main(["runs", "--store", store_path]) == 0
        listing = capsys.readouterr()
        assert "crash" in listing.out
        assert "4 ok / 0 failed of 4 stored runs" in listing.err

    def test_runs_export_json(self, tmp_path, capsys):
        store_path = str(tmp_path / "runs.sqlite")
        main(["sweep", "--driver", "crash", "--n", "6", "--seeds", "0",
              "--store", store_path])
        capsys.readouterr()
        assert main(["runs", "--store", store_path, "--export", "json",
                     "--ledgers"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        record = records[0]
        assert record["driver"] == "crash" and record["status"] == "ok"
        ledger = record["ledger"]
        assert sum(ledger["messages_per_round"]) == record["row"]["messages"]

    def test_sweep_no_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["sweep", "--driver", "crash", "--n", "6", "--seeds",
                     "0", "--no-store"]) == 0
        assert "crash-renaming" in capsys.readouterr().out
        assert not (tmp_path / ".repro").exists()

    def test_sweep_param_passthrough(self, capsys):
        assert main(["sweep", "--driver", "crash", "--n", "6", "--seeds",
                     "0", "--no-store", "--param", "adversary=random",
                     "--f", "1"]) == 0
        assert "crash-renaming" in capsys.readouterr().out


def _halt_driver(n, f, seed, include_rounds=False, **params):
    import os

    os._exit(37)  # simulates an OOM-kill / hard worker death


def _sleepy_driver(n, f, seed, include_rounds=False, **params):
    import time

    time.sleep(10)
    return crash_run_summary(n, f, seed)


class TestChunkRetry:
    def test_attempts_recorded(self, store):
        fresh = run_requests(SMALL.requests(), store=store)
        assert all(result.attempts == 1 for result in fresh)
        cached = run_requests(SMALL.requests(), store=store)
        assert all(result.attempts == 0 for result in cached)

    def test_poisoned_task_isolated_from_chunk_mates(self):
        register_driver("halt", _halt_driver)
        try:
            requests = [RunRequest.make("crash", 6, 0, 0),
                        RunRequest.make("halt", 6, 0, 13)]
            good, bad = run_requests(requests, jobs=2, chunksize=2,
                                     retry_backoff=0.0)
            # The worker died mid-chunk, taking the good task's first
            # attempt with it; the individual retry recovers it.
            assert good.ok and good.attempts == 2
            assert good.row == crash_run_summary(6, 0, 0)
            assert not bad.ok and bad.attempts == 2
            assert "first attempt" in bad.error
        finally:
            DRIVERS.pop("halt", None)

    def test_hung_task_terminated_and_chunk_mate_recovered(self):
        register_driver("sleepy", _sleepy_driver)
        try:
            requests = [RunRequest.make("crash", 6, 0, 1),
                        RunRequest.make("sleepy", 6, 0, 0)]
            good, hung = run_requests(requests, jobs=2, chunksize=2,
                                      timeout=0.5, retry_backoff=0.0)
            assert good.ok and good.attempts == 2
            assert good.row == crash_run_summary(6, 0, 1)
            assert not hung.ok and hung.attempts == 2
            assert "on retry" in hung.error
            assert "first attempt" in hung.error
        finally:
            DRIVERS.pop("sleepy", None)

    def test_run_isolated_kills_hung_worker(self):
        # Exercise the retry path directly: the hung worker must be
        # terminated (no orphan process left behind) through the public
        # multiprocessing API, and the failure message must carry the
        # "on retry" marker the chunk-retry error concatenation relies
        # on.
        import multiprocessing
        import time

        register_driver("sleepy", _sleepy_driver)
        try:
            request = RunRequest.make("sleepy", 6, 0, 0)
            before = {child.pid
                      for child in multiprocessing.active_children()}
            start = time.perf_counter()
            result = engine_pool._run_isolated(request, timeout=0.5)
            elapsed = time.perf_counter() - start
            assert not result.ok
            assert "timed out" in result.error and "on retry" in result.error
            assert elapsed < 8  # terminated, not joined for the full sleep
            leaked = [child for child in multiprocessing.active_children()
                      if child.pid not in before]
            assert not leaked
        finally:
            DRIVERS.pop("sleepy", None)

    def test_run_isolated_reports_worker_death(self):
        register_driver("halt", _halt_driver)
        try:
            request = RunRequest.make("halt", 6, 0, 0)
            result = engine_pool._run_isolated(request, timeout=10.0)
            assert not result.ok
            assert "exit code 37" in result.error
        finally:
            DRIVERS.pop("halt", None)
