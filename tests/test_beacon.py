"""Tests for the committee randomness beacon (weak common coin)."""

from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.beacon import COIN_BITS, commitment_of, weak_common_coin
from tests.support import honest_outputs, run_subprotocol


def coin_program(comm, ctx, my_input):
    ok, value = yield from weak_common_coin(
        comm, ctx.rng, label="test-coin"
    )
    return ok, value


class TestCommitments:
    def test_binding_to_both_parts(self):
        assert commitment_of(1, 2) != commitment_of(1, 3)
        assert commitment_of(1, 2) != commitment_of(2, 2)

    def test_deterministic(self):
        assert commitment_of(7, 8) == commitment_of(7, 8)


class TestHonestBeacon:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(3, 9), seed=st.integers(0, 10**6))
    def test_all_members_agree_on_one_value(self, n, seed):
        result = run_subprotocol(coin_program, [0] * n, 0, seed=seed)
        outputs = honest_outputs(result)
        assert all(ok for ok, _ in outputs)
        values = {value for _, value in outputs}
        assert len(values) == 1
        value = values.pop()
        assert 0 <= value < (1 << COIN_BITS)

    def test_different_labels_yield_independent_values(self):
        def two_coins(comm, ctx, my_input):
            ok_a, a = yield from weak_common_coin(comm, ctx.rng, "a")
            ok_b, b = yield from weak_common_coin(comm, ctx.rng, "b")
            return (ok_a and ok_b), (a, b)

        result = run_subprotocol(two_coins, [0] * 5, 0, seed=3)
        for ok, (a, b) in honest_outputs(result):
            assert ok
            assert a != b

    def test_value_depends_on_every_contribution(self):
        # Re-running with different private seeds changes the value:
        # unpredictability comes from everyone's entropy.
        first = run_subprotocol(coin_program, [0] * 5, 0, seed=1)
        second = run_subprotocol(coin_program, [0] * 5, 0, seed=2)
        value_of = lambda result: honest_outputs(result)[0][1]
        assert value_of(first) != value_of(second)

    def test_four_rounds(self):
        result = run_subprotocol(coin_program, [0] * 4, 0)
        assert result.rounds == 4


class TestAdversarialBeacon:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(5, 9), seed=st.integers(0, 10**6))
    def test_silent_byzantines_cannot_break_agreement(self, n, seed):
        """Members that never commit simply contribute nothing; the
        honest pool is still common, so the coin succeeds."""
        n_byz = (n - 1) // 2
        result = run_subprotocol(
            coin_program, [0] * n, n_byz,
            byzantine_silent=True, seed=seed,
        )
        outputs = honest_outputs(result)
        assert all(ok for ok, _ in outputs)
        assert len({value for _, value in outputs}) == 1

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(5, 9), seed=st.integers(0, 10**6))
    def test_equivocators_never_cause_disagreement(self, n, seed):
        """An equivocating member may force an abort (the documented
        weakness) but can never make two honest members accept
        different values."""
        n_byz = (n - 1) // 2
        result = run_subprotocol(coin_program, [0] * n, n_byz, seed=seed)
        outputs = honest_outputs(result)
        accepted = {value for ok, value in outputs if ok}
        assert len(accepted) <= 1
        for ok, value in outputs:
            if not ok:
                assert value is None
