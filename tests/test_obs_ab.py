"""A/B proof that observability changes no counted result.

The network dispatches to two step implementations: the original
uninstrumented body (``_step_fast``, taken when no enabled observer or
profiler is attached — the default everywhere) and a separate
instrumented body (``_step_observed``).  These tests hold the two to
byte-identical ``Metrics.summary()`` dicts, per-round ledgers, node
outputs, and crash sets across every adversary family, and check that
the disabled path really is the fast path (same object code as before
the observability PR, one branch per round).
"""

import time
from random import Random

import pytest

from repro.adversary.crash import (
    CommitteeHunter,
    MidSendPartitioner,
    RandomCrash,
)
from repro.analysis.experiments import default_namespace, sample_uids
from repro.baselines.collect_rank import CollectRankNode
from repro.core.crash_renaming import CrashRenamingNode
from repro.engine.pool import run_requests
from repro.engine.sweeps import RunRequest
from repro.obs import NULL_OBSERVER, EventRecorder
from repro.sim.messages import CostModel
from repro.sim.network import SyncNetwork
from repro.sim.runner import run_network


def _population(n, seed):
    namespace = default_namespace(n)
    return sample_uids(n, namespace, Random(seed)), namespace


def _observables(processes_fn, cost, adversary_fn, seed, observer):
    result = run_network(processes_fn(), cost,
                         crash_adversary=adversary_fn(), seed=seed,
                         observer=observer)
    metrics = result.metrics
    return {
        "summary": metrics.summary(),
        "messages_per_round": list(metrics.messages_per_round),
        "bits_per_round": list(metrics.bits_per_round),
        "outputs": dict(result.results),
        "crashed": set(result.crashed),
        "rounds": result.rounds,
    }


ADVERSARIES = [
    ("none", lambda: None),
    ("random", lambda: RandomCrash(4, rate=0.15, rng=Random(11))),
    ("hunter", lambda: CommitteeHunter(4, rng=Random(12))),
    ("partitioner", lambda: MidSendPartitioner(4, rng=Random(13))),
]


class TestNetworkAB:
    """Observed and fast executions must count identically."""

    @pytest.mark.parametrize("adversary_fn",
                             [fn for _name, fn in ADVERSARIES],
                             ids=[name for name, _fn in ADVERSARIES])
    def test_crash_renaming_identical(self, adversary_fn):
        uids, namespace = _population(12, seed=7)
        cost = CostModel(n=12, namespace=namespace)

        def processes():
            return [CrashRenamingNode(uid) for uid in uids]

        detached = _observables(processes, cost, adversary_fn, 9, None)
        observed = _observables(processes, cost, adversary_fn, 9,
                                EventRecorder(profile=True))
        null = _observables(processes, cost, adversary_fn, 9, NULL_OBSERVER)
        assert observed == detached
        assert null == detached

    def test_gossip_identical(self):
        uids, namespace = _population(10, seed=3)
        cost = CostModel(n=10, namespace=namespace)

        def processes():
            return [CollectRankNode(uid, assumed_faults=3) for uid in uids]

        adversary_fn = ADVERSARIES[1][1]
        detached = _observables(processes, cost, adversary_fn, 5, None)
        observed = _observables(processes, cost, adversary_fn, 5,
                                EventRecorder(profile=True))
        assert observed == detached

    def test_dispatch_selects_fast_path_when_detached(self):
        uids, namespace = _population(4, seed=1)
        cost = CostModel(n=4, namespace=namespace)

        def network(observer):
            return SyncNetwork([CrashRenamingNode(uid) for uid in uids],
                               cost, observer=observer)

        assert not network(None)._instrumented
        assert not network(NULL_OBSERVER)._instrumented
        assert network(EventRecorder())._instrumented
        # A profiler alone (enabled or not) forces the observed body:
        # phase timing needs the split step.
        assert network(EventRecorder(profile=True))._instrumented

    def test_profiler_only_observer_still_counts_identically(self):
        class ProfilerOnly(EventRecorder):
            enabled = False

        uids, namespace = _population(8, seed=2)
        cost = CostModel(n=8, namespace=namespace)

        def processes():
            return [CrashRenamingNode(uid) for uid in uids]

        adversary_fn = ADVERSARIES[3][1]
        detached = _observables(processes, cost, adversary_fn, 4, None)
        silent = ProfilerOnly(profile=True)
        observed = _observables(processes, cost, adversary_fn, 4, silent)
        assert observed == detached
        assert silent.profiler.calls("plan") == detached["rounds"]
        assert not silent.events()  # disabled: profiled but no events


class TestEngineAB:
    def test_run_requests_identical_with_observer(self):
        requests = [RunRequest.make("crash", 6, 1, seed)
                    for seed in range(3)]
        plain = run_requests(requests)
        observed = run_requests(requests, observer=EventRecorder(
            profile=True))
        assert [result.row for result in plain] == \
               [result.row for result in observed]
        assert ([result.messages_per_round for result in plain]
                == [result.messages_per_round for result in observed])

    def test_run_requests_null_observer_emits_nothing(self):
        requests = [RunRequest.make("crash", 6, 1, 0)]
        plain = run_requests(requests)
        observed = run_requests(requests, observer=NULL_OBSERVER)
        assert plain[0].row == observed[0].row


class TestThroughput:
    def test_detached_throughput_matches_pre_obs_path(self):
        """`repro perf --quick`-style timing: with observers off the
        engine must match the NULL_OBSERVER baseline (both take
        ``_step_fast``; the only delta is one attribute read at
        construction).  Interleaved best-of trials damp scheduler
        drift; the band is 10% two-sided because single-digit-ms runs
        on a shared core still see tail noise — the byte-identical
        result comparisons above are the exact zero-cost guard, this
        only catches gross systematic overhead."""
        from benchmarks.perf import run_broadcast_heavy

        def timed(observer):
            start = time.perf_counter()
            run_broadcast_heavy(48, rounds=4, observer=observer)
            return time.perf_counter() - start

        timed(None), timed(NULL_OBSERVER)  # warm caches before timing
        detached = null = float("inf")
        # Genuinely interleaved, alternating which arm goes first, so
        # scheduler drift and allocator warm-up hit best-of the same
        # way in both directions.
        for trial in range(8):
            arms = [(True, None), (False, NULL_OBSERVER)]
            for is_detached, observer in arms if trial % 2 else arms[::-1]:
                elapsed = timed(observer)
                if is_detached:
                    detached = min(detached, elapsed)
                else:
                    null = min(null, elapsed)
        ratio = detached / null
        assert 1 / 1.10 < ratio < 1.10, (
            f"detached {detached:.4f}s vs null-observer {null:.4f}s "
            f"(ratio {ratio:.3f})"
        )
