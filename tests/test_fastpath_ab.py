"""A/B proof that the fast-path engine changes no counted result.

``ReferenceNetwork`` is a deliberately naive executor: it re-derives the
alive sets by scanning all ``n`` nodes every round, charges every send
individually with a fresh ``bit_size`` computation, allocates inboxes
for every link, and matches kept crash-plan sends by equality — the
exact accounting of the engine before the hot-path overhaul.  The A/B
tests run identical protocols (same processes, seeds, and adversary
configurations) through both executors and require byte-identical
``Metrics.summary()`` dicts, per-round ledgers, and node outputs.

The duplicate-send regression pins the crash-plan fix: kept sends are
resolved to *indices* by object identity end to end, so keeping the
second of two equal sends records index 1 and replays exactly.
"""

from random import Random

import pytest

from repro.adversary.base import CrashPlanError, kept_send_indices
from repro.adversary.crash import (
    BudgetedAdaptiveCrash,
    CommitteeHunter,
    MidSendPartitioner,
    RandomCrash,
)
from repro.adversary.byzantine import make_chaos_monkey, silent
from repro.analysis.experiments import default_namespace, sample_uids
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.baselines.collect_rank import CollectRankNode, run_collect_rank
from repro.baselines.obg_halving import run_obg_halving
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    ByzantineRenamingNode,
    run_byzantine_renaming,
)
from repro.core.crash_renaming import (
    CrashRenamingConfig,
    CrashRenamingNode,
    run_crash_renaming,
)
from repro.crypto.auth import Authenticator
from repro.crypto.shared_randomness import SharedRandomness
from repro.falsify.faulty import RacyRankNode
from repro.falsify.replay import RecordingAdversary, ReplayAdversary
from repro.sim.messages import (
    Broadcast,
    CostModel,
    Envelope,
    Message,
    Send,
    broadcast,
)
from repro.sim.metrics import Metrics
from repro.sim.node import Context, Process
from repro.sim.runner import run_network
from repro.sim.trace import Trace


class ReferenceNetwork:
    """The pre-optimization engine semantics, kept as an oracle."""

    def __init__(self, processes, cost, *, crash_adversary=None, seed=0,
                 shared=None):
        from repro.adversary.base import NoCrashes

        self.processes = list(processes)
        self.n = len(self.processes)
        self.cost = cost
        self.adversary = crash_adversary or NoCrashes()
        self.authenticator = Authenticator()
        self.trace = Trace(enabled=False)
        self.round_no = 0
        self.crashed = set()
        self.finished = {}
        seed_root = Random(seed)
        self.contexts = [
            Context(n=self.n, namespace=cost.namespace, index=index,
                    rng=Random(seed_root.getrandbits(64)), cost=cost,
                    shared=shared)
            for index in range(self.n)
        ]
        self._programs = {}
        self._pending = {}
        # Naive accounting: plain counters, no caching, no batching.
        self.summary = {
            "rounds": 0, "correct_messages": 0, "correct_bits": 0,
            "byzantine_messages": 0, "byzantine_bits": 0,
            "max_message_bits": 0,
        }
        self.messages_per_round = []
        self.bits_per_round = []

    def _alive_unfinished(self):
        return [i for i in range(self.n)
                if i not in self.crashed and i not in self.finished]

    def _correct_pending(self):
        return [i for i in self._alive_unfinished()
                if not self.processes[i].byzantine]

    def _start(self):
        for index, process in enumerate(self.processes):
            program = process.program(self.contexts[index])
            try:
                first_sends = next(program)
            except StopIteration as stop:
                self.finished[index] = stop.value
                continue
            self._programs[index] = program
            self._pending[index] = list(first_sends)

    def _apply_crash_plan(self, proposed):
        alive = frozenset(self._alive_unfinished())
        plan = self.adversary.plan_round(
            self.round_no, proposed, alive, self.trace)
        if not plan:
            return proposed
        kept_by_victim = {}
        for victim, kept in plan.items():
            kept = list(kept)
            remaining = list(proposed.get(victim, []))
            for send in kept:  # pre-PR equality matching
                remaining.remove(send)
            kept_by_victim[victim] = kept
        delivered = dict(proposed)
        for victim, kept in kept_by_victim.items():
            delivered[victim] = kept
            self.crashed.add(victim)
        self.adversary.note_crashes(set(plan))
        return delivered

    def _record(self, message, byzantine):
        bits = message.bit_size(self.cost)
        kind = "byzantine" if byzantine else "correct"
        self.summary[f"{kind}_messages"] += 1
        self.summary[f"{kind}_bits"] += bits
        self.summary["max_message_bits"] = max(
            self.summary["max_message_bits"], bits)
        self.messages_per_round[-1] += 1
        self.bits_per_round[-1] += bits

    def step(self):
        self.round_no += 1
        self.summary["rounds"] += 1
        self.messages_per_round.append(0)
        self.bits_per_round.append(0)
        for ctx in self.contexts:
            ctx.current_round = self.round_no

        proposed = {i: self._pending.get(i, [])
                    for i in self._alive_unfinished()}
        delivered = self._apply_crash_plan(proposed)

        inboxes = {i: [] for i in range(self.n)}
        for sender, sends in delivered.items():
            byz = self.processes[sender].byzantine
            uid = self.processes[sender].uid
            for send in sends:
                self._record(send.message, byz)
                perceived, claim = self.authenticator.resolve(uid, send.claim)
                inboxes[send.to].append(Envelope(
                    sender=sender, to=send.to, round_no=self.round_no,
                    message=send.message, sender_uid=perceived,
                    claimed_sender=claim))

        for index in self._alive_unfinished():
            program = self._programs.get(index)
            if program is None:
                continue
            try:
                self._pending[index] = list(program.send(inboxes[index]))
            except StopIteration as stop:
                self.finished[index] = stop.value
                self._pending.pop(index, None)

    def run(self):
        self._start()
        while self._correct_pending():
            assert self.round_no < 10_000, "reference executor runaway"
            self.step()
        for index in sorted(set(self._programs) - set(self.finished)):
            self._programs[index].close()


def _result_observables(result):
    metrics = result.metrics
    return {
        "summary": metrics.summary(),
        "messages_per_round": list(metrics.messages_per_round),
        "bits_per_round": list(metrics.bits_per_round),
        "outputs": dict(result.results),
        "crashed": set(result.crashed),
    }


def _observables_fast(processes_fn, cost, adversary_fn, seed, columnar=None,
                      shared=None):
    result = run_network(processes_fn(), cost,
                         crash_adversary=adversary_fn(), seed=seed,
                         columnar=columnar, shared=shared)
    return _result_observables(result)


def _observables_reference(processes_fn, cost, adversary_fn, seed,
                           shared=None):
    network = ReferenceNetwork(processes_fn(), cost,
                               crash_adversary=adversary_fn(), seed=seed,
                               shared=shared)
    network.run()
    return {
        "summary": dict(network.summary),
        "messages_per_round": list(network.messages_per_round),
        "bits_per_round": list(network.bits_per_round),
        "outputs": dict(network.finished),
        "crashed": set(network.crashed),
    }


def _population(n, seed):
    namespace = default_namespace(n)
    return sample_uids(n, namespace, Random(seed)), namespace


class TestFastPathAB:
    """Optimized and reference executors must count identically.

    Both engine fast paths are held to the oracle: the per-envelope
    object path (``columnar=False``) and the columnar deliver core
    (``columnar=True``).
    """

    def _assert_identical(self, processes_fn, cost, adversary_fn, seed):
        reference = _observables_reference(
            processes_fn, cost, adversary_fn, seed)
        for columnar in (False, True):
            fast = _observables_fast(
                processes_fn, cost, adversary_fn, seed, columnar=columnar)
            assert fast == reference, f"columnar={columnar}"

    def test_gossip_broadcast_heavy_no_crashes(self):
        uids, namespace = _population(14, seed=3)
        cost = CostModel(n=14, namespace=namespace)
        self._assert_identical(
            lambda: [CollectRankNode(uid, assumed_faults=3) for uid in uids],
            cost, lambda: None, seed=5)

    @pytest.mark.parametrize("adversary_fn", [
        lambda: RandomCrash(4, rate=0.15, rng=Random(11)),
        lambda: MidSendPartitioner(4, rng=Random(12)),
    ], ids=["random", "partitioner"])
    def test_gossip_under_crashes(self, adversary_fn):
        uids, namespace = _population(12, seed=7)
        cost = CostModel(n=12, namespace=namespace)
        self._assert_identical(
            lambda: [CollectRankNode(uid, assumed_faults=4) for uid in uids],
            cost, adversary_fn, seed=9)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_crash_renaming_under_hunter(self, seed):
        uids, namespace = _population(16, seed=seed)
        cost = CostModel(n=16, namespace=namespace)
        config = CrashRenamingConfig()
        self._assert_identical(
            lambda: [CrashRenamingNode(uid, config) for uid in uids],
            cost, lambda: CommitteeHunter(4, rng=Random(seed + 1)),
            seed=seed + 2)

    def test_racy_rank_fixture(self):
        uids, namespace = _population(10, seed=4)
        cost = CostModel(n=10, namespace=namespace)
        self._assert_identical(
            lambda: [RacyRankNode(uid) for uid in uids],
            cost, lambda: MidSendPartitioner(3, rng=Random(8)), seed=6)


class TestColumnarEntryPoints:
    """All five public ``run_*`` entry points count identically on both
    engine fast paths (per-envelope object deliver vs columnar)."""

    def _ab(self, run_fn):
        object_path = _result_observables(run_fn(False))
        columnar = _result_observables(run_fn(True))
        assert columnar == object_path
        return columnar

    def test_run_crash_renaming_under_random_crashes(self):
        uids, namespace = _population(16, seed=21)
        self._ab(lambda columnar: run_crash_renaming(
            uids, namespace=namespace,
            adversary=RandomCrash(5, rate=0.2, rng=Random(3)),
            seed=13, columnar=columnar))

    def test_run_byzantine_renaming_with_corruptions(self):
        uids, namespace = _population(10, seed=31)
        corrupt = {uids[2]: silent,
                   uids[7]: make_chaos_monkey(salt=1, volume=3)}
        observed = self._ab(lambda columnar: run_byzantine_renaming(
            uids, namespace=namespace, byzantine=corrupt,
            shared_seed=5, seed=17, columnar=columnar))
        assert observed["summary"]["byzantine_messages"] > 0

    def test_run_collect_rank_under_partitioner(self):
        uids, namespace = _population(12, seed=7)
        self._ab(lambda columnar: run_collect_rank(
            uids, namespace=namespace, assumed_faults=4,
            adversary=MidSendPartitioner(4, rng=Random(12)),
            seed=9, columnar=columnar))

    def test_run_obg_halving_under_random_crashes(self):
        uids, namespace = _population(16, seed=11)
        self._ab(lambda columnar: run_obg_halving(
            uids, namespace=namespace,
            adversary=RandomCrash(4, rate=0.15, rng=Random(2)),
            seed=3, columnar=columnar))

    def test_run_balls_into_slots_clean(self):
        uids, namespace = _population(14, seed=19)
        self._ab(lambda columnar: run_balls_into_slots(
            uids, namespace=namespace, seed=23, columnar=columnar))

    def test_byzantine_protocol_matches_reference_oracle(self):
        # The oracle gained shared-randomness support for exactly this
        # case: the Byzantine committee lottery reads ``ctx.shared``.
        uids, namespace = _population(8, seed=41)
        cost = CostModel(n=8, namespace=namespace)
        config = ByzantineRenamingConfig()

        def processes():
            return [ByzantineRenamingNode(uid, config) for uid in uids]

        reference = _observables_reference(
            processes, cost, lambda: None, seed=9,
            shared=SharedRandomness(7))
        for columnar in (False, True):
            fast = _observables_fast(
                processes, cost, lambda: None, seed=9,
                columnar=columnar, shared=SharedRandomness(7))
            assert fast == reference, f"columnar={columnar}"


class _Tag(Message):
    """Identity-equality message: distinguishes equal-valued sends."""

    def payload_bits(self, cost):
        return 2


class _EqualTag(Message):
    """All instances equal: the duplicate-send ambiguity trigger."""

    def payload_bits(self, cost):
        return 2

    def __eq__(self, other):
        return type(other) is _EqualTag

    def __hash__(self):
        return hash(_EqualTag)


class _DupSender(Process):
    """Round 1: two *equal* sends to link 0, then one ordinary round."""

    def program(self, ctx):
        yield [Send(0, _EqualTag()), Send(0, _EqualTag())]
        yield []
        return ctx.index


class TestDuplicateSendCrashPlan:
    """Kept sends resolve to indices by identity, end to end."""

    def _run_recorded(self, keep_position):
        def policy(round_no, proposed, alive, trace, remaining):
            if round_no == 1 and 1 in alive:
                return {1: [proposed[1][keep_position]]}
            return {}

        adversary = RecordingAdversary(BudgetedAdaptiveCrash(1, policy))
        processes = [_DupSender(uid=10), _DupSender(uid=20)]
        result = run_network(processes, CostModel(n=2, namespace=32),
                             crash_adversary=adversary, seed=0)
        return adversary.schedule, result

    @pytest.mark.parametrize("keep_position", [0, 1])
    def test_recorded_index_matches_kept_instance(self, keep_position):
        schedule, result = self._run_recorded(keep_position)
        # Equality matching cannot tell the two sends apart and always
        # recorded index 0; identity matching records the true position.
        assert schedule == {1: {1: (keep_position,)}}
        # Node 0's two sends plus the victim's single kept send.
        assert result.metrics.messages_per_round[0] == 3

    @pytest.mark.parametrize("keep_position", [0, 1])
    def test_strict_replay_reproduces_recording(self, keep_position):
        schedule, recorded = self._run_recorded(keep_position)
        replay = ReplayAdversary(schedule, strict=True)
        processes = [_DupSender(uid=10), _DupSender(uid=20)]
        replayed = run_network(processes, CostModel(n=2, namespace=32),
                               crash_adversary=replay, seed=0)
        assert replayed.metrics.summary() == recorded.metrics.summary()
        assert replayed.results == recorded.results
        assert replayed.crashed == recorded.crashed


class TestKeptSendIndices:
    def test_identity_match_beats_equality(self):
        first, second = _EqualTag(), _EqualTag()
        proposed = [Send(0, first), Send(0, second)]
        assert proposed[0] == proposed[1]
        assert kept_send_indices([proposed[1]], proposed) == (1,)
        assert kept_send_indices([proposed[0]], proposed) == (0,)
        assert kept_send_indices([proposed[1], proposed[0]], proposed) == (1, 0)

    def test_equality_fallback_for_fresh_objects(self):
        proposed = [Send(0, _EqualTag()), Send(1, _EqualTag())]
        fresh = Send(1, _EqualTag())
        assert kept_send_indices([fresh], proposed) == (1,)

    def test_unmatched_send_raises(self):
        proposed = [Send(0, _EqualTag())]
        with pytest.raises(CrashPlanError, match="never proposed"):
            kept_send_indices([Send(3, _EqualTag())], proposed)

    def test_duplicate_identical_objects_consume_positions(self):
        send = Send(0, _EqualTag())
        proposed = [send, send]
        assert kept_send_indices([send, send], proposed) == (0, 1)


class TestBroadcastSequence:
    def test_behaves_like_the_send_list(self):
        message = _Tag()
        fanout = broadcast(4, message)
        assert isinstance(fanout, Broadcast)
        assert len(fanout) == 4
        assert [send.to for send in fanout] == [0, 1, 2, 3]
        assert all(send.message is message for send in fanout)
        assert list(fanout) == [Send(to, message) for to in range(4)]

    def test_materialization_is_cached_for_identity_matching(self):
        fanout = broadcast(3, _Tag())
        assert fanout[1] is fanout[1]
        assert list(fanout)[2] is fanout[2]

    def test_oversized_broadcast_rejected(self):
        class Overbroadcaster(Process):
            def program(self, ctx):
                yield broadcast(ctx.n + 1, _Tag())
                return None

        with pytest.raises(ValueError, match="broadcast to 3 links"):
            run_network([Overbroadcaster(uid=1), Overbroadcaster(uid=2)],
                        CostModel(n=2, namespace=8))

    def test_negative_fanout_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Broadcast(-1, _Tag())


class TestBitSizeCache:
    class _CountingBlob(Message):
        computations = 0

        def __init__(self, payload):
            self.payload = payload

        def payload_bits(self, cost):
            type(self).computations += 1
            return self.payload

        def __eq__(self, other):
            return (type(other) is type(self)
                    and other.payload == self.payload)

        def __hash__(self):
            return hash((type(self), self.payload))

    def setup_method(self):
        self._CountingBlob.computations = 0

    def test_identity_hits_compute_once(self):
        metrics = Metrics(cost=CostModel(n=4, namespace=16))
        metrics.begin_round()
        blob = self._CountingBlob(9)
        for _ in range(50):
            metrics.record_send(0, blob, byzantine=False)
        assert self._CountingBlob.computations == 1
        assert metrics.correct_messages == 50
        assert metrics.correct_bits == 50 * blob.bit_size(metrics.cost)

    def test_equality_fallback_hits_across_instances(self):
        metrics = Metrics(cost=CostModel(n=4, namespace=16))
        metrics.begin_round()
        metrics.record_send(0, self._CountingBlob(9), byzantine=False)
        metrics.record_send(0, self._CountingBlob(9), byzantine=False)
        assert self._CountingBlob.computations == 1

    def test_cache_resets_each_round(self):
        metrics = Metrics(cost=CostModel(n=4, namespace=16))
        blob = self._CountingBlob(9)
        metrics.begin_round()
        metrics.record_send(0, blob, byzantine=False)
        metrics.begin_round()
        metrics.record_send(0, blob, byzantine=False)
        assert self._CountingBlob.computations == 2

    def test_batched_record_matches_singles(self):
        cost = CostModel(n=4, namespace=16)
        batched, singles = Metrics(cost=cost), Metrics(cost=cost)
        blob = self._CountingBlob(11)
        batched.begin_round()
        batched.record_sends(2, blob, 7, byzantine=True)
        singles.begin_round()
        for _ in range(7):
            singles.record_send(2, blob, byzantine=True)
        assert batched.summary() == singles.summary()
        assert batched.messages_per_round == singles.messages_per_round
        assert batched.bits_per_round == singles.bits_per_round
        assert batched.sends_by_node == singles.sends_by_node
        assert batched.sends_by_type == singles.sends_by_type

    def test_record_before_begin_round_raises(self):
        metrics = Metrics(cost=CostModel(n=4, namespace=16))
        with pytest.raises(RuntimeError, match="begin_round"):
            metrics.record_send(0, self._CountingBlob(3), byzantine=False)
