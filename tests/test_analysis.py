"""Tests for complexity envelopes, statistics, and experiment drivers."""

import math

import pytest

from repro.analysis.complexity import (
    byzantine_message_envelope,
    byzantine_round_envelope,
    crash_message_envelope,
    crash_round_bound,
    fit_loglog_slope,
    gossip_bit_envelope,
    obg_message_envelope,
)
from repro.analysis.experiments import (
    byzantine_run_summary,
    check_renaming,
    crash_run_summary,
    default_namespace,
    gossip_run_summary,
    make_crash_adversary,
    obg_run_summary,
    sample_uids,
    sweep_crash,
    table1_rows,
)
from repro.analysis.stats import replicate, summarize


class TestEnvelopes:
    def test_crash_round_bound(self):
        assert crash_round_bound(1) == 0
        assert crash_round_bound(16) == 36
        assert crash_round_bound(17) == 45

    def test_crash_messages_grow_with_f(self):
        assert crash_message_envelope(64, 10) > crash_message_envelope(64, 0)

    def test_byzantine_rounds_floor_at_one_log(self):
        assert byzantine_round_envelope(64, 0, 4096) == math.log2(64)

    def test_byzantine_messages_linear_term_dominates_honest_runs(self):
        n = 1024
        assert byzantine_message_envelope(n, 0, 5 * n * n) == n * math.log2(n)

    def test_obg_is_quadratic(self):
        assert obg_message_envelope(100) / obg_message_envelope(50) > 3.5

    def test_gossip_is_cubic(self):
        ratio = gossip_bit_envelope(100, 10**5, 99) / gossip_bit_envelope(
            50, 10**5, 49
        )
        assert ratio > 14


class TestSlopeFitting:
    def test_exact_power_law(self):
        xs = [2, 4, 8, 16, 32]
        ys = [x ** 2 for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_linear(self):
        xs = [10, 100, 1000]
        ys = [3 * x for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1], [1])
        with pytest.raises(ValueError):
            fit_loglog_slope([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_loglog_slope([1, 2, 3], [1, 2])
        with pytest.raises(ValueError):
            fit_loglog_slope([2, 2], [1, 2])


class TestStats:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.std == pytest.approx(1.0)
        assert summary.count == 3

    def test_single_sample_has_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_replicate_groups_by_key(self):
        outcome = replicate(lambda seed: {"x": seed, "y": 2 * seed}, [1, 2, 3])
        assert outcome["x"].mean == 2.0
        assert outcome["y"].mean == 4.0

    def test_replicate_needs_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: {"x": 1}, [])

    def test_as_dict(self):
        assert summarize([2.0]).as_dict()["mean"] == 2.0


class TestDrivers:
    def test_default_namespace_regime(self):
        assert default_namespace(10) == 500
        assert default_namespace(1) == 16

    def test_sample_uids_distinct_and_in_range(self):
        from random import Random

        uids = sample_uids(20, 500, Random(1))
        assert len(set(uids)) == 20
        assert all(1 <= uid <= 500 for uid in uids)

    def test_sample_uids_needs_room(self):
        from random import Random

        with pytest.raises(ValueError):
            sample_uids(10, 5, Random(1))

    def test_unknown_adversary_kind(self):
        from random import Random

        with pytest.raises(ValueError):
            make_crash_adversary("nuclear", 3, Random(1))

    def test_crash_summary_row(self):
        row = crash_run_summary(16, 4, seed=1)
        assert row["unique"] and row["strong"]
        assert row["n"] == 16
        assert row["f_actual"] <= 4
        assert row["rounds"] == 36

    def test_obg_summary_row(self):
        row = obg_run_summary(16, 2, seed=1)
        assert row["unique"] and row["strong"]
        assert row["rounds"] == 4

    def test_gossip_summary_row(self):
        row = gossip_run_summary(12, 2, seed=1)
        assert row["unique"] and row["strong"] and row["order_preserving"]

    def test_byzantine_summary_row(self):
        row = byzantine_run_summary(10, 1, seed=1, consensus_iterations=8)
        assert row["unique"] and row["strong"] and row["order_preserving"]
        assert row["f_actual"] == 1

    def test_sweep_crash_shape(self):
        rows = sweep_crash([8, 16], lambda n: n // 4, seeds=[1, 2])
        assert len(rows) == 4
        assert {row["n"] for row in rows} == {8, 16}

    def test_check_renaming_detects_duplicates(self):
        class Fake:
            def outputs_by_uid(self):
                return {1: 1, 2: 1}

        checks = check_renaming(Fake(), 2)
        assert not checks["unique"]

    @pytest.mark.slow
    def test_table1_rows_all_correct(self):
        rows = table1_rows(24, 3, seed=1)
        assert len(rows) == 6
        assert all(row["unique"] and row["strong"] for row in rows)
