"""Tests for the Theorem 1.4 lower-bound experiment."""

import math
from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lowerbound.anonymous import (
    SilentRenamingExperiment,
    exact_success_probability,
    minimum_messages_for_success,
)


class TestExactFormula:
    def test_everyone_coordinated_always_succeeds(self):
        assert exact_success_probability(10, 10) == 1.0

    def test_one_silent_node_always_succeeds(self):
        assert exact_success_probability(10, 9) == 1.0

    def test_two_silent_nodes_fail_half_the_time(self):
        assert exact_success_probability(10, 8) == pytest.approx(0.5)

    def test_three_silent_nodes(self):
        assert exact_success_probability(10, 7) == pytest.approx(6 / 27)

    def test_fully_silent_large_system_almost_never_succeeds(self):
        assert exact_success_probability(50, 0) < 1e-15

    def test_monotone_in_messages(self):
        values = [exact_success_probability(20, m) for m in range(21)]
        assert values == sorted(values)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            exact_success_probability(0, 0)
        with pytest.raises(ValueError):
            exact_success_probability(5, 6)

    @given(n=st.integers(1, 200), data=st.data())
    def test_probability_is_a_probability(self, n, data):
        messages = data.draw(st.integers(0, n))
        p = exact_success_probability(n, messages)
        assert 0.0 <= p <= 1.0


class TestMessageFloor:
    """The theorem's content: success >= 3/4 needs Omega(n) messages."""

    @pytest.mark.parametrize("n", [3, 5, 10, 50, 200])
    def test_three_quarters_needs_n_minus_one_messages(self, n):
        assert minimum_messages_for_success(n, 0.75) == n - 1

    def test_floor_is_linear_in_n(self):
        floors = [minimum_messages_for_success(n) for n in (10, 20, 40, 80)]
        ratios = [floor / n for floor, n in zip(floors, (10, 20, 40, 80))]
        assert all(ratio >= 0.9 for ratio in ratios)

    def test_lower_targets_need_fewer_messages(self):
        assert (minimum_messages_for_success(30, 0.1)
                <= minimum_messages_for_success(30, 0.9))

    def test_target_validated(self):
        with pytest.raises(ValueError):
            minimum_messages_for_success(10, 0.0)


class TestMonteCarlo:
    def test_matches_exact_formula(self):
        experiment = SilentRenamingExperiment(n=12, rng=Random(7))
        for messages in (4, 8, 10, 11):
            measured = experiment.run(messages, trials=4000)
            exact = exact_success_probability(12, messages)
            assert measured == pytest.approx(exact, abs=0.04)

    def test_sweep_rows(self):
        experiment = SilentRenamingExperiment(n=8, rng=Random(1))
        rows = experiment.sweep([0, 4, 8], trials=500)
        assert [row["messages"] for row in rows] == [0, 4, 8]
        assert rows[-1]["measured_success"] == 1.0

    def test_trials_validated(self):
        experiment = SilentRenamingExperiment(n=8, rng=Random(1))
        with pytest.raises(ValueError):
            experiment.run(4, trials=0)

    def test_budget_validated(self):
        experiment = SilentRenamingExperiment(n=8, rng=Random(1))
        with pytest.raises(ValueError):
            experiment.run_once(9)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 30), seed=st.integers(0, 10**6))
    def test_collision_probability_nontrivial_when_silent(self, n, seed):
        """The proof's core step: >= 2 silent nodes collide with
        probability >= 1/4 (here: at least 1/n per pair, 1/2 for the
        minimal configuration)."""
        experiment = SilentRenamingExperiment(n=n, rng=Random(seed))
        failure = 1.0 - experiment.run(n - 2, trials=600)
        assert failure >= 0.35  # exact value is 1/2


class TestReductionNarrative:
    def test_subquadratic_algorithms_respect_the_floor(self):
        """Our algorithms (Theorems 1.2/1.3) send >> n messages, i.e.
        they sit above the Omega(n) floor, as any correct algorithm
        must."""
        from repro.core.crash_renaming import run_crash_renaming

        n = 16
        result = run_crash_renaming(range(1, n + 1), seed=1)
        floor = minimum_messages_for_success(n, 0.75)
        assert result.metrics.correct_messages >= floor
