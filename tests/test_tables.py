"""Tests for the shared table formatting."""

from repro.analysis.tables import markdown_table, plain_table, select


class TestPlainTable:
    def test_alignment(self):
        text = plain_table([{"a": 1, "bb": 2}, {"a": 333, "bb": 4}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[2]
        # Columns line up: 'bb' header sits above its values.
        assert lines[0].index("bb") == lines[1].index("2")

    def test_booleans_render_as_yes_no(self):
        text = plain_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_float_formatting(self):
        assert "3.14" in plain_table([{"x": 3.14159}])
        assert "3.1416" in plain_table([{"x": 3.14159}], float_digits=4)

    def test_explicit_columns_and_missing_keys(self):
        text = plain_table([{"a": 1}], columns=["a", "z"])
        assert "None" in text

    def test_empty(self):
        assert plain_table([]) == "(no rows)"


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table([{"a": 1, "b": 2}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_empty(self):
        assert markdown_table([]) == "(no rows)"


class TestSelect:
    def test_projection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        assert select(rows, ["c", "a"]) == [{"c": 3, "a": 1}]

    def test_missing_becomes_none(self):
        assert select([{"a": 1}], ["b"]) == [{"b": None}]
