"""Property tests for graded broadcast, Validator, and Consensus.

Each test checks the exact interface contract of Lemma 3.3 / 3.4 under
equivocating and silent Byzantine members, as long as the model's
precondition ``|B| <= b_max < |G| / 2`` holds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consensus.binary import binary_consensus
from repro.consensus.comm import CommitteeComm, plurality
from repro.consensus.graded import BOTTOM, graded_broadcast
from repro.consensus.validator import validator
from tests.support import honest_outputs, run_subprotocol

# -- subprogram adapters -----------------------------------------------------


def gb_program(comm, ctx, my_input):
    grade, out = yield from graded_broadcast(comm, my_input, width=16)
    return grade, out


def validator_program(comm, ctx, my_input):
    same, out = yield from validator(comm, my_input, width=16)
    return same, out


def consensus_program(comm, ctx, my_input):
    out = yield from binary_consensus(
        comm, my_input, ctx.shared, label="test", iterations=12
    )
    return out


# -- strategies ----------------------------------------------------------------

honest_counts = st.integers(4, 9)
small_values = st.integers(0, 3)


def byz_counts_for(n_honest):
    return st.integers(0, (n_honest - 1) // 2)


# -- plurality helper -----------------------------------------------------------


class TestPlurality:
    def test_majority_wins(self):
        assert plurality([1, 1, 2]) == (1, 2)

    def test_deterministic_tie_break(self):
        assert plurality([2, 1]) == plurality([1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plurality([])


class TestCommitteeComm:
    def test_empty_view_rejected(self):
        with pytest.raises(ValueError):
            CommitteeComm([], b_max=0)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            CommitteeComm([0], b_max=-1)


# -- graded broadcast ------------------------------------------------------------


class TestGradedBroadcast:
    @settings(max_examples=20, deadline=None)
    @given(n_honest=honest_counts, value=small_values, data=st.data(),
           seed=st.integers(0, 10**6))
    def test_unanimous_inputs_reach_grade_two(self, n_honest, value, data, seed):
        n_byz = data.draw(byz_counts_for(n_honest))
        result = run_subprotocol(
            gb_program, [value] * n_honest, n_byz, seed=seed
        )
        for grade, out in honest_outputs(result):
            assert grade == 2
            assert out == value

    @settings(max_examples=30, deadline=None)
    @given(n_honest=honest_counts, data=st.data(), seed=st.integers(0, 10**6))
    def test_graded_consistency(self, n_honest, data, seed):
        inputs = data.draw(
            st.lists(small_values, min_size=n_honest, max_size=n_honest)
        )
        n_byz = data.draw(byz_counts_for(n_honest))
        result = run_subprotocol(gb_program, inputs, n_byz, seed=seed)
        outputs = honest_outputs(result)
        graded = [(g, o) for g, o in outputs if g >= 1]
        # All grade >= 1 members agree on the value...
        assert len({o for _, o in graded}) <= 1
        # ...which is some honest member's input.
        for _, out in graded:
            assert out in inputs
        # Grade 2 anywhere forces grade >= 1 everywhere.
        if any(g == 2 for g, _ in outputs):
            assert all(g >= 1 for g, _ in outputs)

    @settings(max_examples=15, deadline=None)
    @given(n_honest=honest_counts, value=small_values, seed=st.integers(0, 10**6))
    def test_silent_byzantines_cannot_block(self, n_honest, value, seed):
        n_byz = (n_honest - 1) // 2
        result = run_subprotocol(
            gb_program, [value] * n_honest, n_byz,
            byzantine_silent=True, seed=seed,
        )
        for grade, out in honest_outputs(result):
            assert (grade, out) == (2, value)

    def test_exactly_two_rounds(self):
        result = run_subprotocol(gb_program, [1, 1, 1, 1], 0)
        assert result.rounds == 2


# -- validator (Lemma 3.3) ----------------------------------------------------------


class TestValidator:
    @settings(max_examples=20, deadline=None)
    @given(n_honest=honest_counts, value=small_values, data=st.data(),
           seed=st.integers(0, 10**6))
    def test_strong_validity_unanimous(self, n_honest, value, data, seed):
        n_byz = data.draw(byz_counts_for(n_honest))
        result = run_subprotocol(
            validator_program, [value] * n_honest, n_byz, seed=seed
        )
        for same, out in honest_outputs(result):
            assert same == 1
            assert out == value

    @settings(max_examples=30, deadline=None)
    @given(n_honest=honest_counts, data=st.data(), seed=st.integers(0, 10**6))
    def test_validity_and_weak_agreement(self, n_honest, data, seed):
        inputs = data.draw(
            st.lists(small_values, min_size=n_honest, max_size=n_honest)
        )
        n_byz = data.draw(byz_counts_for(n_honest))
        result = run_subprotocol(validator_program, inputs, n_byz, seed=seed)
        outputs = honest_outputs(result)
        # Validity: every output is some correct member's input.
        for _, out in outputs:
            assert out in inputs
        # Weak agreement: same=1 anywhere pins everyone's output.
        flagged = [out for same, out in outputs if same == 1]
        if flagged:
            assert len({out for _, out in outputs}) == 1

    def test_two_rounds_per_invocation(self):
        result = run_subprotocol(validator_program, [3, 1, 4, 1], 0)
        assert result.rounds == 2


# -- binary consensus (Lemma 3.4) -------------------------------------------------------


class TestBinaryConsensus:
    @settings(max_examples=20, deadline=None)
    @given(n_honest=honest_counts, bit=st.integers(0, 1), data=st.data(),
           seed=st.integers(0, 10**6))
    def test_validity(self, n_honest, bit, data, seed):
        n_byz = data.draw(byz_counts_for(n_honest))
        result = run_subprotocol(
            consensus_program, [bit] * n_honest, n_byz,
            seed=seed, shared_seed=seed + 7,
        )
        assert honest_outputs(result) == [bit] * n_honest

    @settings(max_examples=30, deadline=None)
    @given(n_honest=honest_counts, data=st.data(), seed=st.integers(0, 10**6))
    def test_agreement_with_mixed_inputs(self, n_honest, data, seed):
        inputs = data.draw(
            st.lists(st.integers(0, 1), min_size=n_honest, max_size=n_honest)
        )
        n_byz = data.draw(byz_counts_for(n_honest))
        result = run_subprotocol(
            consensus_program, inputs, n_byz,
            seed=seed, shared_seed=seed + 7,
        )
        outputs = honest_outputs(result)
        assert len(set(outputs)) == 1
        assert outputs[0] in (0, 1)

    def test_fixed_round_count(self):
        result = run_subprotocol(consensus_program, [0, 1, 0, 1], 0)
        assert result.rounds == 24  # 12 iterations x 2 rounds

    def test_rejects_non_bit_input(self):
        from repro.crypto.shared_randomness import SharedRandomness

        comm = CommitteeComm([0], b_max=0)
        with pytest.raises(ValueError):
            next(binary_consensus(comm, 2, SharedRandomness(0), "x"))

    def test_rejects_zero_iterations(self):
        from repro.crypto.shared_randomness import SharedRandomness

        comm = CommitteeComm([0], b_max=0)
        with pytest.raises(ValueError):
            next(binary_consensus(comm, 1, SharedRandomness(0), "x",
                                  iterations=0))
