"""Property tests: uniqueness survives arbitrary adversarial schedules.

Hypothesis drives the adaptive adversary: it draws crash rounds,
victims, and mid-send delivery prefixes, and the invariant checked is
the paper's deterministic correctness claim -- surviving nodes always
hold distinct names in ``[1, n]``, under *every* schedule.
"""

import math
from random import Random

from hypothesis import given, settings, strategies as st

from repro.adversary.crash import BudgetedAdaptiveCrash, ScheduledCrash
from repro.baselines.obg_halving import run_obg_halving
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming

CONFIG = CrashRenamingConfig(election_constant=4)


def schedule_strategy(n: int, max_rounds: int):
    """Random (round -> victims) schedules plus delivery prefixes."""
    victims = st.lists(
        st.integers(0, n - 1), unique=True, max_size=n - 1
    )
    return st.tuples(
        victims,
        st.lists(st.integers(1, max_rounds), min_size=n, max_size=n),
        st.lists(st.integers(0, n), min_size=n, max_size=n),
    )


def build_schedule(drawn, n):
    victims, rounds, prefixes = drawn
    schedule: dict[int, list[int]] = {}
    deliver_prefix = {}
    for victim in victims:
        schedule.setdefault(rounds[victim], []).append(victim)
        deliver_prefix[victim] = prefixes[victim]
    return ScheduledCrash(schedule, deliver_prefix=deliver_prefix)


class TestCrashRenamingUnderSchedules:
    N = 16

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 10**6))
    def test_uniqueness_under_any_schedule(self, data, seed):
        n = self.N
        max_rounds = 9 * math.ceil(math.log2(n))
        adversary = build_schedule(
            data.draw(schedule_strategy(n, max_rounds)), n
        )
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=seed, config=CONFIG,
        )
        outputs = result.outputs_by_uid()
        values = list(outputs.values())
        assert len(set(values)) == len(values)
        assert all(1 <= value <= n for value in values)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6), burst_round=st.integers(1, 40),
           burst_size=st.integers(1, 15))
    def test_burst_crashes(self, seed, burst_round, burst_size):
        n = self.N
        rng = Random(seed)
        victims = rng.sample(range(n), min(burst_size, n - 1))
        adversary = ScheduledCrash({burst_round: victims})
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=seed, config=CONFIG,
        )
        outputs = result.outputs_by_uid()
        assert len(set(outputs.values())) == len(outputs)


class TestAdaptiveWorstCase:
    """A white-box adaptive policy that crashes the busiest sender each
    round, delivering a prefix of its traffic -- maximal view splitting."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6), keep=st.integers(0, 8))
    def test_busiest_sender_assassin(self, seed, keep):
        n = 16

        def policy(round_no, proposed, alive, trace, remaining):
            if remaining == 0 or not proposed:
                return {}
            busiest = max(proposed, key=lambda v: (len(proposed[v]), v))
            if not proposed[busiest]:
                return {}
            return {busiest: list(proposed[busiest])[:keep]}

        adversary = BudgetedAdaptiveCrash(n - 2, policy)
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=seed, config=CONFIG,
        )
        outputs = result.outputs_by_uid()
        values = list(outputs.values())
        assert len(set(values)) == len(values)
        assert all(1 <= value <= n for value in values)


class TestBaselineUnderSchedules:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 10**6))
    def test_obg_uniqueness_under_any_schedule(self, data, seed):
        n = 16
        max_rounds = math.ceil(math.log2(n))
        adversary = build_schedule(
            data.draw(schedule_strategy(n, max_rounds)), n
        )
        result = run_obg_halving(
            range(1, n + 1), adversary=adversary, seed=seed
        )
        outputs = result.outputs_by_uid()
        values = list(outputs.values())
        assert len(set(values)) == len(values)
        assert all(1 <= value <= n for value in values)
