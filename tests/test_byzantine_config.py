"""Tests for the Byzantine algorithm's configuration and parameter
derivation (committee lottery probability, b_max / c_g bounds)."""

import pytest

from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)


class TestDefaults:
    def test_default_bound_matches_paper(self):
        config = ByzantineRenamingConfig(epsilon0=0.05)
        # floor((1/3 - 0.05) * 90) = floor(25.5) = 25
        assert config.default_max_byzantine(90) == 25

    def test_epsilon_must_be_in_open_interval(self):
        with pytest.raises(ValueError):
            ByzantineRenamingConfig(epsilon0=0.0)
        with pytest.raises(ValueError):
            ByzantineRenamingConfig(epsilon0=0.4)

    def test_paper_formula_saturates_at_small_n(self):
        # p0 = 8 log n / ((1-3e) e^2 n) >> 1 for practical n, so the
        # default configuration is the full committee.
        params = ByzantineRenamingConfig().parameters(64)
        assert params.full_committee
        assert params.candidate_probability == 1.0

    def test_full_committee_bounds_are_exact(self):
        config = ByzantineRenamingConfig(max_byzantine=5)
        params = config.parameters(16)
        assert params.b_max == 5
        assert params.cg_lower == 11
        assert params.diff_threshold == 6


class TestSampledCommittee:
    def test_sampled_bounds_feasible_at_scale(self):
        config = ByzantineRenamingConfig(
            max_byzantine=4, candidate_probability=0.22,
        )
        params = config.parameters(128)
        assert not params.full_committee
        assert 2 * params.b_max < params.cg_lower
        assert params.diff_threshold > params.b_max

    def test_infeasible_sampling_falls_back_to_full_committee(self):
        # Tiny probability cannot separate the bounds; the fallback
        # must still be valid.
        config = ByzantineRenamingConfig(
            max_byzantine=5, candidate_probability=0.01,
        )
        params = config.parameters(30)
        assert params.full_committee
        assert params.candidate_probability == 1.0

    def test_invalid_probability_rejected(self):
        config = ByzantineRenamingConfig(candidate_probability=0.0)
        with pytest.raises(ValueError):
            config.parameters(16)

    def test_bound_above_third_rejected(self):
        config = ByzantineRenamingConfig(max_byzantine=6)
        with pytest.raises(ValueError, match="n/3"):
            config.parameters(16)


class TestRunnerValidation:
    def test_duplicate_uids_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            run_byzantine_renaming([1, 1, 2])

    def test_unknown_byzantine_uid_rejected(self):
        from repro.adversary.byzantine import silent

        with pytest.raises(ValueError, match="not in the system"):
            run_byzantine_renaming([1, 2, 3, 4], byzantine={99: silent})

    def test_too_many_byzantine_rejected(self):
        from repro.adversary.byzantine import silent

        config = ByzantineRenamingConfig(max_byzantine=1)
        with pytest.raises(ValueError, match="exceed"):
            run_byzantine_renaming(
                [1, 2, 3, 4, 5, 6],
                byzantine={1: silent, 2: silent},
                config=config,
            )

    def test_uid_outside_namespace_rejected(self):
        with pytest.raises(ValueError, match="identities must lie"):
            run_byzantine_renaming([1, 300], namespace=100)

    def test_shared_randomness_is_required(self):
        from repro.core.byzantine_renaming import (
            ByzantineRenamingError,
            ByzantineRenamingNode,
        )
        from repro.sim.messages import CostModel
        from repro.sim.runner import run_network

        with pytest.raises(ByzantineRenamingError, match="shared randomness"):
            run_network(
                [ByzantineRenamingNode(uid=1)],
                CostModel(n=1, namespace=10),
                shared=None,
            )
