"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _parse_params, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_crash_defaults(self):
        args = build_parser().parse_args(["crash"])
        assert args.n == 64 and args.f == 0

    def test_byzantine_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["byzantine", "--strategy", "nuke"])

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.scenario == "crash,gossip" and args.n == 16

    def test_param_scalars_are_json_decoded(self):
        params = _parse_params(["rate=0.5", "strategy=withholder"])
        assert params == {"rate": 0.5, "strategy": "withholder"}

    def test_param_structured_json_stays_text(self):
        # Engine params are JSON scalars; a structured value reaches the
        # driver as its JSON text (the faults driver's spec form).
        raw = '[{"kind": "omission", "p": 0.1}]'
        assert _parse_params([f"faults={raw}"]) == {"faults": raw}


class TestCommands:
    def test_crash_success_exit_code(self, capsys):
        assert main(["crash", "--n", "12", "--f", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "crash-renaming" in out
        assert "yes" in out

    def test_crash_without_faults(self, capsys):
        assert main(["crash", "--n", "8"]) == 0

    def test_byzantine_run(self, capsys):
        code = main(["byzantine", "--n", "8", "--f", "1",
                     "--strategy", "silent", "--seed", "2"])
        assert code == 0
        assert "byzantine-renaming" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--n", "10", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "gossip" in out and "halving" in out

    def test_lowerbound(self, capsys):
        assert main(["lowerbound", "--n", "12", "--trials", "200"]) == 0
        out = capsys.readouterr().out
        assert "11 messages" in out

    def test_faults_custom_spec(self, capsys):
        code = main(["faults", "--scenario", "gossip", "--n", "8",
                     "--seed", "1", "--watchdog-rounds", "200",
                     "--faults", '[{"kind": "omission", "p": 0.1}]'])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAFE_TERMINATED" in out and "custom" in out

    def test_faults_frontier_exit_zero_with_brittle_cells(self, capsys):
        # Brittle rungs are expected rows; only a failed fault-free
        # control rung is a harness-level failure.
        code = main(["faults", "--scenario", "crash", "--n", "12",
                     "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAFETY_VIOLATED" in out and "first_unsafe_rung" in out
