"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_crash_defaults(self):
        args = build_parser().parse_args(["crash"])
        assert args.n == 64 and args.f == 0

    def test_byzantine_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["byzantine", "--strategy", "nuke"])


class TestCommands:
    def test_crash_success_exit_code(self, capsys):
        assert main(["crash", "--n", "12", "--f", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "crash-renaming" in out
        assert "yes" in out

    def test_crash_without_faults(self, capsys):
        assert main(["crash", "--n", "8"]) == 0

    def test_byzantine_run(self, capsys):
        code = main(["byzantine", "--n", "8", "--f", "1",
                     "--strategy", "silent", "--seed", "2"])
        assert code == 0
        assert "byzantine-renaming" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--n", "10", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "gossip" in out and "halving" in out

    def test_lowerbound(self, capsys):
        assert main(["lowerbound", "--n", "12", "--trials", "200"]) == 0
        out = capsys.readouterr().out
        assert "11 messages" in out
