"""Tests for the link-level fault-injection layer (`repro.faults`).

Covers the verdict vocabulary, the concrete channel models, spec
building, the network's faulted delivery path (charging invariance,
zero-cost `None`, observer events), strict replay of a composed
omission + partition + mid-send-crash scenario, the degradation
classifier, and the `faults` engine driver.
"""

import json
from dataclasses import dataclass
from pathlib import Path
from random import Random

import pytest

from repro.adversary.crash import ScheduledCrash
from repro.falsify.monitors import InvariantViolation, RoundBudget
from repro.faults import (
    CORRUPT,
    DROP,
    DUPLICATE,
    HOLD,
    ComposedFaults,
    CorruptingChannel,
    DuplicateDelivery,
    FaultModel,
    FaultPlanError,
    FaultVerdict,
    NoFaults,
    OmissionFaults,
    TransientPartition,
    build_fault_model,
    corrupt_message,
    drop,
    duplicate,
    hold,
    normalize_spec,
    spec_to_json,
    validate_plan,
)
from repro.faults.degradation import (
    CRASHED,
    SAFE_STALLED,
    SAFE_TERMINATED,
    SAFETY_VIOLATED,
    FaultTap,
    classify_outcome,
    default_ladder,
    degradation_frontier,
    summarize_frontier,
)
from repro.faults.driver import faults_run_summary
from repro.sim.messages import CostModel, Message, Send, broadcast
from repro.sim.network import NonTerminationError
from repro.sim.node import Process
from repro.sim.runner import run_network


@dataclass(frozen=True)
class Tick(Message):
    value: int = 0
    tag: int = 0

    def payload_bits(self, cost):
        return 16


class Beacon(Process):
    """Broadcasts `rounds` ticks; records every inbox; sends do not
    depend on the inbox, so the proposed traffic is identical under any
    fault model — which makes charging assertions exact."""

    def __init__(self, uid, rounds=2):
        super().__init__(uid)
        self.rounds = rounds
        self.inboxes = []

    def program(self, ctx):
        for i in range(self.rounds):
            inbox = yield broadcast(ctx.n, Tick(i))
            self.inboxes.append(list(inbox))
        return self.uid


def cost_for(n):
    return CostModel(n=n, namespace=max(n, 100))


def beacons(n, rounds=2):
    return [Beacon(uid=i + 1, rounds=rounds) for i in range(n)]


class PlanOnce(FaultModel):
    """Issues one fixed plan in one round."""

    def __init__(self, round_no, plan):
        self.round_no = round_no
        self.plan = plan

    def plan_round(self, round_no, delivered, alive):
        return self.plan if round_no == self.round_no else {}


# ---------------------------------------------------------------------------
# Verdicts, corruption, plan validation


class TestVerdicts:
    def test_helpers(self):
        assert drop().kind == DROP
        assert duplicate(3) == FaultVerdict(DUPLICATE, copies=3)
        assert hold(7).release_round == 7
        assert FaultVerdict(CORRUPT, salt=5).salt == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultVerdict("teleport")

    def test_duplicate_needs_positive_copies(self):
        with pytest.raises(FaultPlanError, match="copies"):
            FaultVerdict(DUPLICATE, copies=0)


class TestCorruptMessage:
    def test_flips_one_bit_of_one_int_field(self):
        message = Tick(value=0b100, tag=9)
        mutated = corrupt_message(message, salt=0)
        assert mutated != message
        # salt=0 picks the first int field and flips bit 0.
        assert mutated.value == 0b101 and mutated.tag == 9

    def test_salt_selects_field_and_bit(self):
        message = Tick(value=1, tag=1)
        a = corrupt_message(message, salt=2)   # field 0, bit 2
        b = corrupt_message(message, salt=3)   # field 1, bit 3
        assert a.value == 1 ^ 4 and a.tag == 1
        assert b.value == 1 and b.tag == 1 ^ 8

    def test_deterministic(self):
        message = Tick(value=123, tag=45)
        assert corrupt_message(message, 11) == corrupt_message(message, 11)

    def test_no_int_fields_passes_through(self):
        @dataclass(frozen=True)
        class SetMsg(Message):
            known: frozenset = frozenset()

            def payload_bits(self, cost):
                return 1

        message = SetMsg(known=frozenset({1, 2}))
        assert corrupt_message(message, 3) is message


class TestValidatePlan:
    DELIVERED = {0: [Send(0, Tick(0)), Send(1, Tick(0))]}

    def test_unknown_sender(self):
        with pytest.raises(FaultPlanError, match="resolved no sends"):
            validate_plan({9: {0: drop()}}, 1, self.DELIVERED)

    def test_index_out_of_range(self):
        with pytest.raises(FaultPlanError, match="outside"):
            validate_plan({0: {2: drop()}}, 1, self.DELIVERED)

    def test_non_verdict_rejected(self):
        with pytest.raises(FaultPlanError, match="FaultVerdict"):
            validate_plan({0: {0: "drop"}}, 1, self.DELIVERED)

    def test_hold_must_release_in_future(self):
        with pytest.raises(FaultPlanError, match="not in the future"):
            validate_plan({0: {0: hold(1)}}, 1, self.DELIVERED)

    def test_good_plan_accepted(self):
        validate_plan({0: {0: drop(), 1: hold(2)}}, 1, self.DELIVERED)


# ---------------------------------------------------------------------------
# Channel models


def _delivered(n, count):
    return {s: [Send(t, Tick(0)) for t in range(count)] for s in range(n)}


class TestOmissionFaults:
    def test_budget_caps_total_drops(self):
        model = OmissionFaults(1.0, seed=1, budget=5)
        total = 0
        for round_no in range(1, 4):
            plan = model.plan_round(round_no, _delivered(4, 4),
                                    frozenset(range(4)))
            total += sum(len(v) for v in plan.values())
        assert total == 5 and model.issued == 5 and model.remaining == 0

    def test_same_seed_same_decisions(self):
        a = OmissionFaults(0.3, seed=9)
        b = OmissionFaults(0.3, seed=9)
        for round_no in (1, 2, 3):
            assert (a.plan_round(round_no, _delivered(5, 5), frozenset())
                    == b.plan_round(round_no, _delivered(5, 5), frozenset()))

    def test_zero_rate_plans_nothing(self):
        model = OmissionFaults(0.0, seed=1)
        assert model.plan_round(1, _delivered(3, 3), frozenset()) == {}

    def test_probability_validated(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            OmissionFaults(1.5)
        with pytest.raises(ValueError, match="budget"):
            OmissionFaults(0.5, budget=-1)


class TestDuplicateDelivery:
    def test_verdicts_carry_copies(self):
        model = DuplicateDelivery(1.0, copies=2, seed=0, budget=3)
        plan = model.plan_round(1, _delivered(2, 2), frozenset())
        verdicts = [v for vs in plan.values() for v in vs.values()]
        assert verdicts and all(
            v.kind == DUPLICATE and v.copies == 2 for v in verdicts)

    def test_copies_validated(self):
        with pytest.raises(ValueError, match="copies"):
            DuplicateDelivery(0.5, copies=0)


class TestCorruptingChannel:
    def test_salts_are_seeded(self):
        a = CorruptingChannel(1.0, seed=4)
        b = CorruptingChannel(1.0, seed=4)
        plan_a = a.plan_round(1, _delivered(3, 2), frozenset())
        plan_b = b.plan_round(1, _delivered(3, 2), frozenset())
        assert plan_a == plan_b
        salts = [v.salt for vs in plan_a.values() for v in vs.values()]
        assert len(set(salts)) > 1  # not a constant salt


class TestTransientPartition:
    def test_holds_only_cross_cut_sends_in_window(self):
        model = TransientPartition(2, 4, left=[0, 1])
        delivered = {s: [Send(t, Tick(0)) for t in range(4)]
                     for s in range(4)}
        for round_no, expect_any in ((1, False), (2, True), (3, True),
                                     (4, False)):
            plan = model.plan_round(round_no, delivered, frozenset())
            assert bool(plan) is expect_any
            for sender, verdicts in plan.items():
                for index, verdict in verdicts.items():
                    assert verdict.kind == HOLD
                    assert verdict.release_round == 4
                    crosses = (sender in {0, 1}) != (index in {0, 1})
                    assert crosses

    def test_window_validated(self):
        with pytest.raises(ValueError, match="start"):
            TransientPartition(0, 3, left=[0])
        with pytest.raises(ValueError, match="empty"):
            TransientPartition(3, 3, left=[0])


class TestComposedFaults:
    def test_first_verdict_wins(self):
        first = PlanOnce(1, {0: {0: drop()}})
        second = PlanOnce(1, {0: {0: duplicate(), 1: hold(2)}})
        merged = ComposedFaults([first, second]).plan_round(
            1, _delivered(1, 2), frozenset())
        assert merged[0][0].kind == DROP
        assert merged[0][1].kind == HOLD

    def test_describe_joins(self):
        text = ComposedFaults([NoFaults(), NoFaults()]).describe()
        assert text == "NoFaults + NoFaults"


# ---------------------------------------------------------------------------
# Specs


class TestSpec:
    def test_normalize_shapes(self):
        entry = {"kind": "omission", "p": 0.1}
        assert normalize_spec(None) == []
        assert normalize_spec("") == []
        assert normalize_spec(entry) == [entry]
        assert normalize_spec([entry]) == [entry]
        assert normalize_spec(json.dumps([entry])) == [entry]

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError, match="not JSON"):
            normalize_spec("{nope")

    def test_entry_needs_kind(self):
        with pytest.raises(ValueError, match="'kind'"):
            normalize_spec([{"p": 0.5}])

    def test_spec_to_json_is_stable(self):
        spec = [{"p": 0.1, "kind": "omission"}]
        assert spec_to_json(spec) == spec_to_json(json.loads(
            spec_to_json(spec)))

    def test_build_each_kind(self):
        n = 8
        assert build_fault_model(None, n) is None
        assert build_fault_model([], n) is None
        assert isinstance(
            build_fault_model([{"kind": "omission"}], n), OmissionFaults)
        assert isinstance(
            build_fault_model([{"kind": "duplicate", "copies": 2}], n),
            DuplicateDelivery)
        assert isinstance(
            build_fault_model([{"kind": "corrupt"}], n), CorruptingChannel)
        partition = build_fault_model(
            [{"kind": "partition", "start": 2, "end": 6}], n)
        assert isinstance(partition, TransientPartition)
        assert partition.left == frozenset(range(4))  # left_frac 0.5
        assert isinstance(build_fault_model([{"kind": "none"}], n), NoFaults)
        composed = build_fault_model(
            [{"kind": "omission"}, {"kind": "partition"}], n)
        assert isinstance(composed, ComposedFaults)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            build_fault_model([{"kind": "teleport"}], 8)

    def test_seed_offsets_differ_per_entry(self):
        composed = build_fault_model(
            [{"kind": "omission", "p": 0.5},
             {"kind": "omission", "p": 0.5}], 8, seed=3)
        a, b = composed.models
        rolls_a = [a.rng.random() for _ in range(4)]
        rolls_b = [b.rng.random() for _ in range(4)]
        assert rolls_a != rolls_b  # entries never share coins

    def test_explicit_entry_seed_wins(self):
        a = build_fault_model([{"kind": "omission", "seed": 42}], 8, seed=0)
        b = build_fault_model([{"kind": "omission", "seed": 42}], 8, seed=99)
        assert [a.rng.random() for _ in range(4)] == [
            b.rng.random() for _ in range(4)]

    def test_partition_left_frac_validated(self):
        with pytest.raises(ValueError, match="left_frac"):
            build_fault_model(
                [{"kind": "partition", "left_frac": 1.0}], 8)


# ---------------------------------------------------------------------------
# The faulted network path


class TestNetworkFaults:
    def test_none_and_nofaults_and_p0_identical(self):
        """`fault_model=None`, NoFaults(), and a 0-rate channel agree on
        every counted quantity and every output."""
        n = 6
        baseline = run_network(beacons(n), cost_for(n))
        for model in (NoFaults(), OmissionFaults(0.0, seed=1)):
            result = run_network(beacons(n), cost_for(n), fault_model=model)
            assert result.metrics.summary() == baseline.metrics.summary()
            assert list(result.metrics.messages_per_round) == list(
                baseline.metrics.messages_per_round)
            assert list(result.metrics.bits_per_round) == list(
                baseline.metrics.bits_per_round)
            assert result.results == baseline.results
            assert result.fault_stats.total == 0
        assert baseline.fault_stats is None

    def test_drops_are_charged_but_not_delivered(self):
        n = 4
        baseline = run_network(beacons(n), cost_for(n))
        processes = beacons(n)
        result = run_network(
            processes, cost_for(n),
            fault_model=OmissionFaults(1.0, seed=0))
        # Beacon sends are inbox-independent, so the full fault-free
        # traffic is still charged...
        assert result.metrics.summary() == baseline.metrics.summary()
        # ...but nothing ever arrives.
        assert all(not inbox
                   for process in processes for inbox in process.inboxes)
        assert result.fault_stats.dropped == n * n * 2

    def test_duplicates_deliver_copies_but_charge_once(self):
        n = 3
        baseline = run_network(beacons(n, rounds=1), cost_for(n))
        processes = beacons(n, rounds=1)
        result = run_network(
            processes, cost_for(n),
            fault_model=DuplicateDelivery(1.0, copies=2, seed=0))
        assert result.metrics.summary() == baseline.metrics.summary()
        for process in processes:
            (inbox,) = process.inboxes
            assert len(inbox) == n * 3  # every message in triplicate
            # Copies are distinct Envelope instances around one message.
            assert len({id(env) for env in inbox}) == len(inbox)
        assert result.fault_stats.duplicated == n * n * 2

    def test_corruption_flips_received_copy_only(self):
        n = 2
        processes = beacons(n, rounds=1)
        result = run_network(
            processes, cost_for(n),
            fault_model=CorruptingChannel(1.0, seed=5))
        received = [env.message for p in processes for env in p.inboxes[0]]
        assert all(isinstance(m, Tick) for m in received)
        assert any(m != Tick(0) for m in received)
        assert result.fault_stats.corrupted == n * n
        # Charged bits are the original's (same size here, but the
        # ledger path never sees the mutated copy).
        baseline = run_network(beacons(n, rounds=1), cost_for(n))
        assert result.metrics.summary() == baseline.metrics.summary()

    def test_hold_defers_delivery_to_release_round(self):
        n = 4
        processes = beacons(n, rounds=3)
        model = TransientPartition(1, 3, left=[0, 1])
        result = run_network(processes, cost_for(n), fault_model=model)
        # Rounds 1-2 partition {0,1} from {2,3}; round 3 heals.
        for index, process in enumerate(processes):
            mine = {0, 1} if index < 2 else {2, 3}
            for inbox in process.inboxes[:2]:
                assert {env.sender for env in inbox} == mine
            healed = process.inboxes[2]
            # Round 3 delivers the held cross-cut backlog of rounds 1-2
            # (two senders x two rounds) plus the round-3 traffic.
            held = [env for env in healed if env.sender not in mine]
            assert len(held) == 2 * 2 + 2
            assert all(env.round_no == 3 for env in healed)
        stats = result.fault_stats
        assert stats.held == 2 * (2 * 2 * 2)  # two rounds of cross traffic
        assert stats.released == stats.held
        baseline = run_network(beacons(n, rounds=3), cost_for(n))
        assert result.metrics.summary() == baseline.metrics.summary()

    def test_held_mail_to_retired_node_vanishes(self):
        n = 3
        model = TransientPartition(1, 3, left=[0])
        adversary = ScheduledCrash({2: [0]})
        result = run_network(
            beacons(n, rounds=3), cost_for(n),
            crash_adversary=adversary, fault_model=model)
        assert result.crashed == {0}
        assert result.fault_stats.released < result.fault_stats.held

    def test_release_to_dead_receiver_is_counted(self):
        """Regression: mail held for a receiver that crashed before the
        release round used to vanish from the ledger; now every held
        message is accounted for: ``held == released + released_to_dead``
        at run end (nothing left in flight)."""
        from repro.obs import EventRecorder, validate_events

        n = 3
        model = TransientPartition(1, 3, left=[0])
        adversary = ScheduledCrash({2: [0]})
        recorder = EventRecorder()
        result = run_network(
            beacons(n, rounds=3), cost_for(n),
            crash_adversary=adversary, fault_model=model, observer=recorder)
        stats = result.fault_stats
        assert result.crashed == {0}
        assert stats.released_to_dead > 0
        assert stats.held == stats.released + stats.released_to_dead
        assert stats.in_flight() == 0 and stats.expired == 0
        assert stats.as_dict()["released_to_dead"] == stats.released_to_dead
        events = recorder.events("fault")
        assert validate_events(events) == []
        dead_releases = [
            event for event in events
            if event["kind"] == "fault.release"
            and event.get("data", {}).get("dead")
        ]
        assert len(dead_releases) == stats.released_to_dead

    def test_held_mail_past_termination_expires(self):
        """Regression: a partition whose heal round exceeds the run
        length used to leave held mail in the queue forever with no
        ledger trace; the run-end drain now expires it."""
        from repro.obs import EventRecorder, validate_events

        n = 4
        # Beacons finish after round 2; the cut heals at round 10.
        model = TransientPartition(1, 10, left=[0, 1])
        recorder = EventRecorder()
        processes = beacons(n, rounds=2)
        result = run_network(processes, cost_for(n), fault_model=model,
                             observer=recorder)
        stats = result.fault_stats
        assert stats.held == 2 * (2 * 2 * 2)  # two rounds of cross traffic
        assert stats.released == 0 and stats.released_to_dead == 0
        assert stats.in_flight() == stats.held
        assert stats.expired == stats.in_flight()
        assert stats.as_dict()["expired"] == stats.expired
        # The cross-cut mail really never arrived.
        for index, process in enumerate(processes):
            mine = {0, 1} if index < 2 else {2, 3}
            for inbox in process.inboxes:
                assert {env.sender for env in inbox} <= mine
        events = recorder.events("fault")
        assert validate_events(events) == []
        expire_events = [event for event in events
                         if event["kind"] == "fault.expire"]
        assert len(expire_events) == stats.expired

    def test_bad_plan_rejected_atomically(self):
        model = PlanOnce(1, {0: {99: drop()}})
        with pytest.raises(FaultPlanError, match="outside"):
            run_network(beacons(3), cost_for(3), fault_model=model)

    def test_fault_events_emitted_and_schema_valid(self):
        from repro.obs import EventRecorder, validate_events

        recorder = EventRecorder()
        model = ComposedFaults([
            OmissionFaults(0.3, seed=1),
            DuplicateDelivery(0.3, seed=2),
            CorruptingChannel(0.3, seed=3),
            TransientPartition(1, 2, left=[0, 1]),
        ])
        run_network(beacons(4, rounds=3), cost_for(4),
                    fault_model=model, observer=recorder)
        events = recorder.events()
        assert validate_events(events) == []
        kinds = {event["kind"] for event in events}
        assert {"fault.drop", "fault.dup", "fault.corrupt",
                "fault.hold", "fault.release"} <= kinds
        assert {"round.begin", "round.end"} <= kinds

    def test_fault_model_with_monitors(self):
        # Monitors run on the faulted path too.
        with pytest.raises(InvariantViolation, match="round-budget"):
            run_network(
                beacons(3, rounds=9), cost_for(3),
                fault_model=NoFaults(), monitors=(RoundBudget(4),))


# ---------------------------------------------------------------------------
# Strict replay of a composed fault scenario (acceptance criterion)


def _fault_events(recorder):
    return [(e["kind"], e.get("round"), e.get("node"), e.get("data"))
            for e in recorder.events("fault")]


class TestComposedScenarioReplay:
    SPEC = json.dumps([
        {"kind": "omission", "p": 0.08, "budget": 24},
        {"kind": "partition", "start": 3, "end": 6},
    ])
    N, F, SEED = 12, 2, 1

    def _run(self, adversary, observer=None):
        from repro.falsify.monitors import LedgerMonotone
        from repro.falsify.scenarios import run_scenario

        return run_scenario(
            "gossip", self.N, self.F, self.SEED,
            adversary=adversary, monitors=(LedgerMonotone(),),
            params={"faults": self.SPEC}, observer=observer,
        )

    def test_record_then_strict_replay_identical(self):
        from repro.falsify.replay import RecordingAdversary, ReplayAdversary
        from repro.falsify.scenarios import make_adversary
        from repro.obs import EventRecorder

        recorder = RecordingAdversary(
            make_adversary("partitioner", self.F, self.SEED))
        obs_a = EventRecorder()
        recorded = self._run(recorder, observer=obs_a)
        assert recorded.fault_stats.total > 0  # faults actually fired
        assert recorded.crashed  # the mid-send crash actually fired

        obs_b = EventRecorder()
        replayed = self._run(
            ReplayAdversary(recorder.schedule, strict=True), observer=obs_b)

        assert replayed.metrics.summary() == recorded.metrics.summary()
        assert list(replayed.metrics.messages_per_round) == list(
            recorded.metrics.messages_per_round)
        assert list(replayed.metrics.bits_per_round) == list(
            recorded.metrics.bits_per_round)
        assert replayed.results == recorded.results
        assert replayed.crashed == recorded.crashed
        assert replayed.fault_stats.as_dict() == (
            recorded.fault_stats.as_dict())
        assert _fault_events(obs_b) == _fault_events(obs_a)

    def test_artifact_params_rebuild_the_channel(self, tmp_path):
        """The spec travels through a JSON artifact and rebuilds an
        identical fault model on the other side."""
        from repro.falsify.replay import ReproArtifact

        artifact = ReproArtifact(
            scenario="gossip", n=self.N, f=self.F, seed=self.SEED,
            params={"faults": self.SPEC}, schedule={},
            invariant="none", violation_round=0, nodes=(),
            detail=None, code_version="x",
        )
        loaded = ReproArtifact.load(artifact.save(tmp_path / "a.json"))
        assert loaded.params["faults"] == self.SPEC
        first = self._run(None)
        from repro.falsify.scenarios import run_scenario

        second = run_scenario(
            "gossip", loaded.n, loaded.f, loaded.seed,
            params=loaded.params)
        assert second.metrics.summary() == first.metrics.summary()


# ---------------------------------------------------------------------------
# Degradation classifier


class TestClassifyOutcome:
    def test_clean_run(self):
        outcome, detail = classify_outcome(lambda: "ok")
        assert outcome == SAFE_TERMINATED and detail["result"] == "ok"

    def test_round_budget_is_a_stall(self):
        def stall():
            raise InvariantViolation("round-budget", "too slow",
                                     round_no=9, nodes=(1,))

        outcome, detail = classify_outcome(stall)
        assert outcome == SAFE_STALLED and detail["round"] == 9

    def test_non_termination_is_a_stall(self):
        def hang():
            raise NonTerminationError("hang", round_no=7, pending=(0, 1))

        outcome, detail = classify_outcome(hang)
        assert outcome == SAFE_STALLED and detail["round"] == 7

    def test_safety_violation(self):
        def violate():
            raise InvariantViolation("unique-names", "dup",
                                     round_no=3, nodes=(2, 4))

        outcome, detail = classify_outcome(violate)
        assert outcome == SAFETY_VIOLATED
        assert detail["invariant"] == "unique-names"

    def test_crash(self):
        def boom():
            raise ValueError("kaput")

        outcome, detail = classify_outcome(boom)
        assert outcome == CRASHED and detail["error"] == "ValueError"


class TestFaultTap:
    def test_counts_issued_verdicts(self):
        tap = FaultTap(PlanOnce(1, {0: {0: drop(), 1: duplicate()}}))
        tap.plan_round(1, _delivered(1, 2), frozenset())
        tap.plan_round(2, _delivered(1, 2), frozenset())
        assert tap.issued == {DROP: 1, DUPLICATE: 1}


class TestFrontier:
    def test_default_ladder_starts_with_control(self):
        ladder = default_ladder(8)
        assert ladder[0].label == "none" and ladder[0].spec == ()
        assert len(ladder) >= 6
        for rung in ladder:
            json.loads(rung.spec_json)  # every rung serializes

    def test_gossip_frontier_all_safe(self):
        ladder = [rung for rung in default_ladder(8)
                  if rung.label in ("none", "omission-5%", "partition-3r")]
        rows = degradation_frontier(
            ["gossip"], 8, 0, 1, ladder=ladder, watchdog_rounds=200)
        assert [row["outcome"] for row in rows] == [SAFE_TERMINATED] * 3
        assert rows[1]["dropped"] > 0
        assert rows[2]["held"] > 0
        (summary,) = summarize_frontier(rows)
        assert summary["worst_outcome"] == SAFE_TERMINATED
        assert summary["first_unsafe_rung"] is None

    def test_crash_renaming_violates_under_omission(self):
        """The measured frontier: committee renaming genuinely loses
        unique-names on a lossy channel (it assumes reliable links)."""
        rows = degradation_frontier(
            ["crash"], 16, 0, 1,
            ladder=[rung for rung in default_ladder(16)
                    if rung.label in ("none", "omission-5%")],
            watchdog_rounds=800)
        control, lossy = rows
        assert control["outcome"] == SAFE_TERMINATED
        assert lossy["outcome"] == SAFETY_VIOLATED
        assert "unique-names" in lossy["detail"]

    def test_fault_scenario_control_rung_is_fault_free(self):
        # The explicit NoFaults control overrides gossip-faults'
        # default spec: zero faults issued on the "none" rung.
        rows = degradation_frontier(
            ["gossip-faults"], 8, 0, 1,
            ladder=default_ladder(8)[:1], watchdog_rounds=200)
        (row,) = rows
        assert row["outcome"] == SAFE_TERMINATED
        assert row["dropped"] == 0 and row["held"] == 0


# ---------------------------------------------------------------------------
# Engine driver + code-version coverage


class TestFaultsDriver:
    def test_registered_with_engine(self):
        from repro.engine.sweeps import resolve_driver

        assert resolve_driver("faults") is faults_run_summary

    def test_terminated_row_with_ledgers(self):
        row = faults_run_summary(
            8, 0, 1, scenario="gossip",
            faults='[{"kind": "omission", "p": 0.1}]',
            watchdog_rounds=200, include_rounds=True)
        assert row["outcome"] == SAFE_TERMINATED
        assert row["dropped"] > 0
        assert len(row["messages_per_round"]) == row["rounds"]
        assert "_result" not in row

    def test_violating_row_has_no_ledgers(self):
        row = faults_run_summary(
            16, 0, 1, scenario="crash",
            faults='[{"kind": "omission", "p": 0.05}]',
            watchdog_rounds=800, include_rounds=True)
        assert row["outcome"] == SAFETY_VIOLATED
        assert "messages_per_round" not in row
        assert row["messages"] is None

    def test_rows_are_json_scalars_plus_ledgers(self):
        from repro.engine.sweeps import LEDGER_KEYS

        row = faults_run_summary(
            8, 0, 1, scenario="gossip",
            faults='[{"kind": "duplicate", "p": 0.2}]',
            watchdog_rounds=200)
        for key, value in row.items():
            if key in LEDGER_KEYS:
                continue
            assert value is None or isinstance(value, (str, int, float, bool))


class TestCodeVersionCoversFaults:
    def test_faults_sources_inside_hashed_root(self):
        import repro
        import repro.faults

        root = Path(repro.__file__).resolve().parent
        faults_dir = Path(repro.faults.__file__).resolve().parent
        assert root in faults_dir.parents
        assert list(faults_dir.glob("*.py"))

    def test_hash_changes_when_a_faults_file_changes(self, tmp_path,
                                                     monkeypatch):
        """Regression: the content hash must cover subpackages, so
        cached rows invalidate when fault semantics change."""
        import repro

        from repro.engine.store import code_version

        package = tmp_path / "repro"
        (package / "faults").mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "faults" / "base.py").write_text("A = 1\n")
        monkeypatch.setattr(repro, "__file__",
                            str(package / "__init__.py"))
        before = code_version.__wrapped__()
        (package / "faults" / "base.py").write_text("A = 2\n")
        after = code_version.__wrapped__()
        assert before != after
