"""Backend-conformance suite: one store contract, every backend.

Every test in :class:`TestBackendContract` runs against each backend
reported by :func:`available_backend_schemes` — SQLite always, DuckDB
when the optional package is installed (the CI matrix has one leg with
it and one without).  Adding a backend means adding its scheme to
``BACKEND_SCHEMES``; this suite then pins its semantics for free.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.engine.backends import (
    SETTLE_ALREADY,
    SETTLE_LOST,
    SETTLE_MISSING,
    SETTLE_OK,
    TASK_LEASED,
    TASK_PENDING,
    available_backend_schemes,
    duckdb_available,
    open_backend,
    parse_store_url,
    resolve_store_url,
)
from repro.engine.store import RunStore, code_version, run_hash

SCHEMES = available_backend_schemes()

_EXTENSIONS = {"sqlite": "sqlite", "duckdb": "duckdb"}


def put_run(store, hash_, *, driver="crash", n=8, f=2, seed=0, params=None,
            version="v1", status="ok", row=None, **kwargs):
    store.put(
        hash_, driver=driver, n=n, f=f, seed=seed,
        params={} if params is None else params, version=version,
        status=status, row=row, **kwargs,
    )


@pytest.fixture(params=SCHEMES)
def store(request, tmp_path):
    extension = _EXTENSIONS[request.param]
    url = f"{request.param}://{tmp_path}/runs.{extension}"
    with RunStore(url) as opened:
        yield opened


class TestStoreUrls:
    def test_bare_path_is_sqlite(self):
        assert parse_store_url(".repro/runs.sqlite") == (
            "sqlite", os.path.abspath(".repro/runs.sqlite"))

    def test_pathlike_accepted(self):
        scheme, path = parse_store_url(Path("/tmp/x/runs.sqlite"))
        assert scheme == "sqlite"
        assert path == "/tmp/x/runs.sqlite"

    def test_explicit_sqlite_url(self):
        assert parse_store_url("sqlite:///abs/runs.sqlite") == (
            "sqlite", "/abs/runs.sqlite")
        assert parse_store_url("SQLITE://rel/runs.sqlite") == (
            "sqlite", os.path.abspath("rel/runs.sqlite"))

    def test_relative_path_resolves_against_parse_time_cwd(
            self, tmp_path, monkeypatch):
        """Workers parsing the same relative URL from different CWDs
        must NOT end up with different store files — the path is
        pinned to the parser's CWD, so the coordinator resolves it
        once and hands workers an absolute URL."""
        monkeypatch.chdir(tmp_path)
        scheme, path = parse_store_url("sqlite://runs.sqlite")
        assert path == str(tmp_path / "runs.sqlite")
        url = resolve_store_url("runs.sqlite")
        assert url == f"sqlite://{tmp_path}/runs.sqlite"
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        # The absolute URL round-trips identically from any CWD.
        assert parse_store_url(url) == (scheme, path)
        assert resolve_store_url(url) == url

    def test_memory_path_stays_symbolic(self):
        assert parse_store_url(":memory:") == ("sqlite", ":memory:")
        assert resolve_store_url("sqlite://:memory:") == "sqlite://:memory:"

    def test_duckdb_url_parses_without_package(self):
        # Parsing never imports the backend; only opening does.
        assert parse_store_url("duckdb://runs.duckdb") == (
            "duckdb", os.path.abspath("runs.duckdb"))

    def test_unknown_scheme_is_an_error(self):
        with pytest.raises(ValueError, match="unknown run-store scheme"):
            parse_store_url("postgres://runs")

    def test_missing_path_is_an_error(self):
        with pytest.raises(ValueError, match="missing a path"):
            parse_store_url("sqlite://")

    def test_available_schemes_track_duckdb(self):
        schemes = available_backend_schemes()
        assert schemes[0] == "sqlite"
        assert ("duckdb" in schemes) == duckdb_available()

    @pytest.mark.skipif(duckdb_available(),
                        reason="duckdb installed; error path unreachable")
    def test_duckdb_url_without_package_fails_cleanly(self, tmp_path):
        with pytest.raises(RuntimeError, match="pip install duckdb"):
            open_backend(f"duckdb://{tmp_path}/runs.duckdb")

    def test_runstore_reports_scheme_and_path(self, tmp_path):
        with RunStore(f"sqlite://{tmp_path}/runs.sqlite") as opened:
            assert opened.scheme == "sqlite"
            assert opened.path == tmp_path / "runs.sqlite"


class TestBackendContract:
    def test_put_get_round_trip(self, store):
        row = {"messages": 12, "outcome": "safe_terminated", "ratio": 1.5}
        put_run(store, "h1", n=16, f=4, seed=7,
                params={"b": 2, "a": 1}, row=row, elapsed=0.25)
        run = store.get("h1")
        assert run is not None
        assert (run.hash, run.driver, run.n, run.f, run.seed) == (
            "h1", "crash", 16, 4, 7)
        assert run.params == {"a": 1, "b": 2}
        assert run.code_version == "v1"
        assert run.ok and run.status == "ok"
        assert run.row == row
        assert run.error is None
        assert run.elapsed == 0.25
        assert run.has_ledger is False
        assert store.get("missing") is None

    def test_put_replaces_row_and_ledger(self, store):
        put_run(store, "h1", row={"messages": 1},
                messages_per_round=[1, 2, 3], bits_per_round=[10, 20, 30])
        put_run(store, "h1", row={"messages": 2},
                messages_per_round=[5], bits_per_round=[50])
        assert len(store.query()) == 1
        assert store.get("h1").row == {"messages": 2}
        assert store.ledger("h1") == ([5], [50])

    def test_failed_run_round_trip(self, store):
        put_run(store, "bad", status="failed", error="boom", row=None)
        run = store.get("bad")
        assert not run.ok
        assert run.error == "boom"
        assert run.row is None

    def test_ledger_preserves_round_order(self, store):
        messages, bits = [7, 3, 9, 1], [70, 30, 90, 10]
        put_run(store, "h1", messages_per_round=messages,
                bits_per_round=bits)
        assert store.ledger("h1") == (messages, bits)

    def test_empty_ledger_distinct_from_missing(self, store):
        put_run(store, "zero", messages_per_round=[], bits_per_round=[])
        put_run(store, "none")
        assert store.ledger("zero") == ([], [])
        assert store.ledger("none") is None
        assert store.ledger("absent") is None
        assert store.get("zero").has_ledger is True
        assert store.get("none").has_ledger is False

    def test_lone_ledger_side_is_rejected(self, store):
        with pytest.raises(ValueError,
                           match="h1.*messages_per_round given without"):
            put_run(store, "h1", messages_per_round=[1])
        with pytest.raises(ValueError,
                           match="h1.*bits_per_round given without"):
            put_run(store, "h1", bits_per_round=[1])
        assert store.get("h1") is None

    def test_ledger_length_mismatch_is_rejected(self, store):
        with pytest.raises(ValueError, match="h1.*length mismatch"):
            put_run(store, "h1", messages_per_round=[1, 2],
                    bits_per_round=[10])
        assert store.get("h1") is None

    def test_content_hash_round_trip(self, store):
        hash_ = run_hash("crash", 8, 2, 0, {"adversary": "hunter"}, "v1")
        put_run(store, hash_, params={"adversary": "hunter"},
                row={"messages": 3})
        assert store.get(hash_).row == {"messages": 3}
        assert run_hash("crash", 8, 2, 0, {"adversary": "hunter"},
                        "v2") != hash_

    def test_telemetry_replace_semantics(self, store):
        put_run(store, "h1")
        store.put_telemetry("h1", "timing", {"elapsed": 1.0})
        store.put_telemetry("h1", "timing", {"elapsed": 2.0})
        store.put_telemetry("h1", "retries", 3)
        assert store.telemetry("h1") == {
            "timing": {"elapsed": 2.0}, "retries": 3}
        rows = store.telemetry_rows(key="timing")
        assert rows == [("h1", "timing", {"elapsed": 2.0})]

    def test_telemetry_rows_driver_filter(self, store):
        put_run(store, "c1", driver="crash")
        put_run(store, "b1", driver="byzantine")
        store.put_telemetry("c1", "k", 1)
        store.put_telemetry("b1", "k", 2)
        assert store.telemetry_rows(driver="byzantine") == [("b1", "k", 2)]
        assert len(store.telemetry_rows()) == 2
        assert store.telemetry("nope") == {}

    def test_query_filters_and_order(self, store):
        put_run(store, "a", driver="crash", n=8, f=2, seed=0)
        put_run(store, "b", driver="crash", n=16, f=4, seed=1)
        put_run(store, "c", driver="byzantine", n=8, f=2, seed=0,
                status="failed", error="x")
        runs = store.query()
        assert [r.hash for r in runs] == [
            h for _, h in sorted((r.created, r.hash) for r in runs)]
        assert {r.hash for r in store.query(driver="crash")} == {"a", "b"}
        assert [r.hash for r in store.query(n=8, f=2, seed=0,
                                            status="ok")] == ["a"]
        assert len(store.query(limit=2)) == 2
        assert store.query(driver="gossip") == []

    def test_query_current_version_only(self, store):
        put_run(store, "old", version="0123456789abcdef")
        put_run(store, "new", version=code_version())
        assert [r.hash for r in store.query(current_version_only=True)] == [
            "new"]
        assert len(store.query()) == 2

    def test_stats(self, store):
        assert store.stats()["total"] == 0
        put_run(store, "a", driver="crash")
        put_run(store, "b", driver="byzantine", status="failed", error="x")
        stats = store.stats()
        assert stats["total"] == 2
        assert stats["ok"] == 1
        assert stats["failed"] == 1
        assert stats["drivers"] == ["byzantine", "crash"]
        assert str(store.path) in stats["path"]

    def test_delete_removes_everything(self, store):
        put_run(store, "h1", messages_per_round=[1], bits_per_round=[10])
        store.put_telemetry("h1", "k", 1)
        put_run(store, "h2")
        store.delete("h1")
        assert store.get("h1") is None
        assert store.ledger("h1") is None
        assert store.telemetry("h1") == {}
        assert store.get("h2") is not None
        store.delete("h1")  # idempotent

    def test_clear(self, store):
        put_run(store, "h1", messages_per_round=[1], bits_per_round=[10])
        store.put_telemetry("h1", "k", 1)
        store.clear()
        assert store.stats()["total"] == 0
        assert store.query() == []
        assert store.telemetry_rows() == []

    def test_concurrent_thread_readers(self, store):
        """Reader threads on the same store object see committed puts."""
        total = 24
        errors: list[BaseException] = []
        final_counts: list[int] = []
        deadline = time.monotonic() + 60

        def reader():
            try:
                while time.monotonic() < deadline:
                    runs = store.query(driver="conc")
                    for run in runs:
                        assert store.ledger(run.hash) == ([1, 2], [10, 20])
                    if len(runs) == total:
                        final_counts.append(len(runs))
                        return
                final_counts.append(len(store.query(driver="conc")))
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for index in range(total):
            put_run(store, f"conc{index:02d}", driver="conc", seed=index,
                    messages_per_round=[1, 2], bits_per_round=[10, 20])
        for thread in threads:
            thread.join(timeout=90)
        assert not errors, errors
        assert final_counts == [total, total, total]

    def test_concurrent_process_reader(self, store):
        """A second process sweeps while this one polls the same store."""
        if not store.backend.supports_concurrent_instances:
            pytest.skip(f"{store.scheme} locks the store file per process")
        url = f"{store.scheme}://{store.path}"
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", "--driver", "crash",
             "--n", "6", "--seeds", "0-1", "--f", "1", "--store", url],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True,
        )
        observed = 0
        try:
            # Poll the live store from this process while the sweep
            # writes from the other one.
            while process.poll() is None:
                observed = max(observed, store.stats()["total"])
                time.sleep(0.05)
        finally:
            stdout, stderr = process.communicate(timeout=300)
        assert process.returncode == 0, stderr
        runs = store.query(driver="crash")
        assert len(runs) == 2
        assert all(run.ok for run in runs)
        assert all(store.ledger(run.hash) is not None for run in runs)
        assert observed <= 2
        assert "2 cached" in subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--driver", "crash",
             "--n", "6", "--seeds", "0-1", "--f", "1", "--store", url],
            capture_output=True, env=env, text=True, check=True,
        ).stderr


class TestQueueContract:
    """The work-queue surface, against every available backend."""

    def enqueue(self, store, campaign="c", count=2):
        return store.backend.enqueue_tasks(campaign, [
            (f"h{index}", index, {"driver": "crash", "n": 8, "f": 0,
                                  "seed": index, "params": {}})
            for index in range(count)
        ])

    def test_enqueue_is_idempotent(self, store):
        assert self.enqueue(store) == 2
        assert self.enqueue(store) == 0
        assert self.enqueue(store, count=3) == 1  # only h2 is new
        counts = store.backend.task_counts()
        assert counts["c"][TASK_PENDING] == 3
        assert counts["c"]["total"] == 3

    def test_claim_orders_by_seq_and_stamps_lease(self, store):
        self.enqueue(store)
        task = store.backend.claim_task("w1", 100.0, 130.0)
        assert task.task_hash == "h0"
        assert task.state == TASK_LEASED
        assert task.lease_owner == "w1"
        assert task.lease_deadline == 130.0
        assert task.attempts == 1
        assert task.spec["seed"] == 0
        persisted = store.backend.get_task("c", "h0")
        assert persisted.state == TASK_LEASED
        assert persisted.lease_owner == "w1"

    def test_claim_skips_live_leases(self, store):
        self.enqueue(store)
        store.backend.claim_task("w1", 100.0, 130.0)
        second = store.backend.claim_task("w2", 100.0, 130.0)
        assert second.task_hash == "h1"
        assert store.backend.claim_task("w3", 100.0, 130.0) is None

    def test_claim_reclaims_expired_lease(self, store):
        self.enqueue(store, count=1)
        store.backend.claim_task("dead", 100.0, 130.0)
        # Before the deadline the lease holds; after it, it's claimable
        # and the new lease increments the attempt counter.
        assert store.backend.claim_task("w2", 129.0, 160.0) is None
        task = store.backend.claim_task("w2", 131.0, 160.0)
        assert task.task_hash == "h0"
        assert task.lease_owner == "w2"
        assert task.attempts == 2

    def test_campaign_filter(self, store):
        self.enqueue(store, campaign="a", count=1)
        self.enqueue(store, campaign="b", count=1)
        task = store.backend.claim_task("w", 100.0, 130.0, campaign="b")
        assert task.campaign == "b"
        assert store.backend.claim_task("w", 100.0, 130.0,
                                        campaign="nope") is None

    def test_heartbeat_extends_only_the_live_owner(self, store):
        self.enqueue(store, count=1)
        store.backend.claim_task("w1", 100.0, 130.0)
        assert store.backend.heartbeat_task("c", "h0", "w1", 200.0)
        assert store.backend.get_task("c", "h0").lease_deadline == 200.0
        assert not store.backend.heartbeat_task("c", "h0", "imposter", 999.0)
        assert store.backend.get_task("c", "h0").lease_deadline == 200.0

    def test_settlement_is_at_most_once(self, store):
        self.enqueue(store, count=1)
        store.backend.claim_task("w1", 100.0, 130.0)
        assert store.backend.settle_task(
            "c", "h0", "w1", "settled", "ok", 101.0) == SETTLE_OK
        settled = store.backend.get_task("c", "h0")
        assert settled.done and settled.result_status == "ok"
        assert settled.lease_owner is None
        assert settled.settled == 101.0
        # Everyone after the winner gets a detected no-op.
        assert store.backend.settle_task(
            "c", "h0", "w1", "settled", "ok", 102.0) == SETTLE_ALREADY
        assert store.backend.settle_task(
            "c", "h0", "w2", "settled", "ok", 102.0) == SETTLE_ALREADY
        assert store.backend.settle_task(
            "c", "nope", "w1", "settled", "ok", 102.0) == SETTLE_MISSING

    def test_settle_after_lease_lost_is_detected(self, store):
        self.enqueue(store, count=1)
        store.backend.claim_task("slow", 100.0, 130.0)
        # The lease expires and another worker claims it; the original
        # worker's settle must NOT override the new lease.
        store.backend.claim_task("fast", 131.0, 160.0)
        assert store.backend.settle_task(
            "c", "h0", "slow", "settled", "ok", 132.0) == SETTLE_LOST
        task = store.backend.get_task("c", "h0")
        assert task.state == TASK_LEASED and task.lease_owner == "fast"

    def test_settle_rejects_non_terminal_state(self, store):
        self.enqueue(store, count=1)
        store.backend.claim_task("w1", 100.0, 130.0)
        with pytest.raises(ValueError, match="state must be"):
            store.backend.settle_task("c", "h0", "w1", "pending", None, 1.0)

    def test_reap_returns_expired_leases_to_pending(self, store):
        self.enqueue(store)
        store.backend.claim_task("dead", 100.0, 130.0)
        store.backend.claim_task("live", 100.0, 500.0)
        reaped = store.backend.reap_tasks(200.0)
        assert [(t.task_hash, t.lease_owner) for t in reaped] == [
            ("h0", "dead")]
        assert store.backend.get_task("c", "h0").state == TASK_PENDING
        assert store.backend.get_task("c", "h1").state == TASK_LEASED
        assert store.backend.reap_tasks(200.0) == []

    def test_force_reap_reclaims_live_leases_too(self, store):
        self.enqueue(store, count=1)
        store.backend.claim_task("live", 100.0, 500.0)
        reaped = store.backend.reap_tasks(101.0, force=True)
        assert [t.lease_owner for t in reaped] == ["live"]
        assert store.backend.get_task("c", "h0").state == TASK_PENDING

    def test_list_tasks_filters(self, store):
        self.enqueue(store)
        store.backend.claim_task("w1", 100.0, 130.0)
        assert [t.task_hash for t in store.backend.list_tasks()] == [
            "h0", "h1"]
        assert [t.task_hash for t in store.backend.list_tasks(
            state=TASK_PENDING)] == ["h1"]
        assert store.backend.list_tasks(campaign="nope") == []
        assert len(store.backend.list_tasks(limit=1)) == 1

    def test_run_attempts_round_trip(self, store):
        put_run(store, "h1", attempts=2)
        put_run(store, "h2")
        assert store.get("h1").attempts == 2
        assert store.get("h2").attempts == 1

    def test_concurrent_claimants_never_share_a_task(self, store):
        """Racing threads each lease a disjoint set of tasks."""
        total = 16
        store.backend.enqueue_tasks("race", [
            (f"r{index:02d}", index, {"seed": index})
            for index in range(total)
        ])
        claimed: list[list[str]] = [[] for _ in range(4)]
        errors: list[BaseException] = []

        def claimant(slot: int) -> None:
            try:
                while True:
                    task = store.backend.claim_task(
                        f"w{slot}", time.time(), time.time() + 60.0,
                        campaign="race")
                    if task is None:
                        return
                    claimed[slot].append(task.task_hash)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=claimant, args=(slot,))
                   for slot in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        everything = [hash_ for per in claimed for hash_ in per]
        assert sorted(everything) == [f"r{i:02d}" for i in range(total)]
        assert len(set(everything)) == total  # no double-claims


class TestClosedStore:
    def test_use_after_close_is_an_error(self, tmp_path):
        store = RunStore(f"sqlite://{tmp_path}/runs.sqlite")
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.query()
