"""Backend-conformance suite: one store contract, every backend.

Every test in :class:`TestBackendContract` runs against each backend
reported by :func:`available_backend_schemes` — SQLite always, DuckDB
when the optional package is installed (the CI matrix has one leg with
it and one without).  Adding a backend means adding its scheme to
``BACKEND_SCHEMES``; this suite then pins its semantics for free.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.engine.backends import (
    available_backend_schemes,
    duckdb_available,
    open_backend,
    parse_store_url,
)
from repro.engine.store import RunStore, code_version, run_hash

SCHEMES = available_backend_schemes()

_EXTENSIONS = {"sqlite": "sqlite", "duckdb": "duckdb"}


def put_run(store, hash_, *, driver="crash", n=8, f=2, seed=0, params=None,
            version="v1", status="ok", row=None, **kwargs):
    store.put(
        hash_, driver=driver, n=n, f=f, seed=seed,
        params={} if params is None else params, version=version,
        status=status, row=row, **kwargs,
    )


@pytest.fixture(params=SCHEMES)
def store(request, tmp_path):
    extension = _EXTENSIONS[request.param]
    url = f"{request.param}://{tmp_path}/runs.{extension}"
    with RunStore(url) as opened:
        yield opened


class TestStoreUrls:
    def test_bare_path_is_sqlite(self):
        assert parse_store_url(".repro/runs.sqlite") == (
            "sqlite", ".repro/runs.sqlite")

    def test_pathlike_accepted(self):
        scheme, path = parse_store_url(Path("/tmp/x/runs.sqlite"))
        assert scheme == "sqlite"
        assert path == "/tmp/x/runs.sqlite"

    def test_explicit_sqlite_url(self):
        assert parse_store_url("sqlite:///abs/runs.sqlite") == (
            "sqlite", "/abs/runs.sqlite")
        assert parse_store_url("SQLITE://rel/runs.sqlite") == (
            "sqlite", "rel/runs.sqlite")

    def test_duckdb_url_parses_without_package(self):
        # Parsing never imports the backend; only opening does.
        assert parse_store_url("duckdb://runs.duckdb") == (
            "duckdb", "runs.duckdb")

    def test_unknown_scheme_is_an_error(self):
        with pytest.raises(ValueError, match="unknown run-store scheme"):
            parse_store_url("postgres://runs")

    def test_missing_path_is_an_error(self):
        with pytest.raises(ValueError, match="missing a path"):
            parse_store_url("sqlite://")

    def test_available_schemes_track_duckdb(self):
        schemes = available_backend_schemes()
        assert schemes[0] == "sqlite"
        assert ("duckdb" in schemes) == duckdb_available()

    @pytest.mark.skipif(duckdb_available(),
                        reason="duckdb installed; error path unreachable")
    def test_duckdb_url_without_package_fails_cleanly(self, tmp_path):
        with pytest.raises(RuntimeError, match="pip install duckdb"):
            open_backend(f"duckdb://{tmp_path}/runs.duckdb")

    def test_runstore_reports_scheme_and_path(self, tmp_path):
        with RunStore(f"sqlite://{tmp_path}/runs.sqlite") as opened:
            assert opened.scheme == "sqlite"
            assert opened.path == tmp_path / "runs.sqlite"


class TestBackendContract:
    def test_put_get_round_trip(self, store):
        row = {"messages": 12, "outcome": "safe_terminated", "ratio": 1.5}
        put_run(store, "h1", n=16, f=4, seed=7,
                params={"b": 2, "a": 1}, row=row, elapsed=0.25)
        run = store.get("h1")
        assert run is not None
        assert (run.hash, run.driver, run.n, run.f, run.seed) == (
            "h1", "crash", 16, 4, 7)
        assert run.params == {"a": 1, "b": 2}
        assert run.code_version == "v1"
        assert run.ok and run.status == "ok"
        assert run.row == row
        assert run.error is None
        assert run.elapsed == 0.25
        assert run.has_ledger is False
        assert store.get("missing") is None

    def test_put_replaces_row_and_ledger(self, store):
        put_run(store, "h1", row={"messages": 1},
                messages_per_round=[1, 2, 3], bits_per_round=[10, 20, 30])
        put_run(store, "h1", row={"messages": 2},
                messages_per_round=[5], bits_per_round=[50])
        assert len(store.query()) == 1
        assert store.get("h1").row == {"messages": 2}
        assert store.ledger("h1") == ([5], [50])

    def test_failed_run_round_trip(self, store):
        put_run(store, "bad", status="failed", error="boom", row=None)
        run = store.get("bad")
        assert not run.ok
        assert run.error == "boom"
        assert run.row is None

    def test_ledger_preserves_round_order(self, store):
        messages, bits = [7, 3, 9, 1], [70, 30, 90, 10]
        put_run(store, "h1", messages_per_round=messages,
                bits_per_round=bits)
        assert store.ledger("h1") == (messages, bits)

    def test_empty_ledger_distinct_from_missing(self, store):
        put_run(store, "zero", messages_per_round=[], bits_per_round=[])
        put_run(store, "none")
        assert store.ledger("zero") == ([], [])
        assert store.ledger("none") is None
        assert store.ledger("absent") is None
        assert store.get("zero").has_ledger is True
        assert store.get("none").has_ledger is False

    def test_lone_ledger_side_is_rejected(self, store):
        with pytest.raises(ValueError,
                           match="h1.*messages_per_round given without"):
            put_run(store, "h1", messages_per_round=[1])
        with pytest.raises(ValueError,
                           match="h1.*bits_per_round given without"):
            put_run(store, "h1", bits_per_round=[1])
        assert store.get("h1") is None

    def test_ledger_length_mismatch_is_rejected(self, store):
        with pytest.raises(ValueError, match="h1.*length mismatch"):
            put_run(store, "h1", messages_per_round=[1, 2],
                    bits_per_round=[10])
        assert store.get("h1") is None

    def test_content_hash_round_trip(self, store):
        hash_ = run_hash("crash", 8, 2, 0, {"adversary": "hunter"}, "v1")
        put_run(store, hash_, params={"adversary": "hunter"},
                row={"messages": 3})
        assert store.get(hash_).row == {"messages": 3}
        assert run_hash("crash", 8, 2, 0, {"adversary": "hunter"},
                        "v2") != hash_

    def test_telemetry_replace_semantics(self, store):
        put_run(store, "h1")
        store.put_telemetry("h1", "timing", {"elapsed": 1.0})
        store.put_telemetry("h1", "timing", {"elapsed": 2.0})
        store.put_telemetry("h1", "retries", 3)
        assert store.telemetry("h1") == {
            "timing": {"elapsed": 2.0}, "retries": 3}
        rows = store.telemetry_rows(key="timing")
        assert rows == [("h1", "timing", {"elapsed": 2.0})]

    def test_telemetry_rows_driver_filter(self, store):
        put_run(store, "c1", driver="crash")
        put_run(store, "b1", driver="byzantine")
        store.put_telemetry("c1", "k", 1)
        store.put_telemetry("b1", "k", 2)
        assert store.telemetry_rows(driver="byzantine") == [("b1", "k", 2)]
        assert len(store.telemetry_rows()) == 2
        assert store.telemetry("nope") == {}

    def test_query_filters_and_order(self, store):
        put_run(store, "a", driver="crash", n=8, f=2, seed=0)
        put_run(store, "b", driver="crash", n=16, f=4, seed=1)
        put_run(store, "c", driver="byzantine", n=8, f=2, seed=0,
                status="failed", error="x")
        runs = store.query()
        assert [r.hash for r in runs] == [
            h for _, h in sorted((r.created, r.hash) for r in runs)]
        assert {r.hash for r in store.query(driver="crash")} == {"a", "b"}
        assert [r.hash for r in store.query(n=8, f=2, seed=0,
                                            status="ok")] == ["a"]
        assert len(store.query(limit=2)) == 2
        assert store.query(driver="gossip") == []

    def test_query_current_version_only(self, store):
        put_run(store, "old", version="0123456789abcdef")
        put_run(store, "new", version=code_version())
        assert [r.hash for r in store.query(current_version_only=True)] == [
            "new"]
        assert len(store.query()) == 2

    def test_stats(self, store):
        assert store.stats()["total"] == 0
        put_run(store, "a", driver="crash")
        put_run(store, "b", driver="byzantine", status="failed", error="x")
        stats = store.stats()
        assert stats["total"] == 2
        assert stats["ok"] == 1
        assert stats["failed"] == 1
        assert stats["drivers"] == ["byzantine", "crash"]
        assert str(store.path) in stats["path"]

    def test_delete_removes_everything(self, store):
        put_run(store, "h1", messages_per_round=[1], bits_per_round=[10])
        store.put_telemetry("h1", "k", 1)
        put_run(store, "h2")
        store.delete("h1")
        assert store.get("h1") is None
        assert store.ledger("h1") is None
        assert store.telemetry("h1") == {}
        assert store.get("h2") is not None
        store.delete("h1")  # idempotent

    def test_clear(self, store):
        put_run(store, "h1", messages_per_round=[1], bits_per_round=[10])
        store.put_telemetry("h1", "k", 1)
        store.clear()
        assert store.stats()["total"] == 0
        assert store.query() == []
        assert store.telemetry_rows() == []

    def test_concurrent_thread_readers(self, store):
        """Reader threads on the same store object see committed puts."""
        total = 24
        errors: list[BaseException] = []
        final_counts: list[int] = []
        deadline = time.monotonic() + 60

        def reader():
            try:
                while time.monotonic() < deadline:
                    runs = store.query(driver="conc")
                    for run in runs:
                        assert store.ledger(run.hash) == ([1, 2], [10, 20])
                    if len(runs) == total:
                        final_counts.append(len(runs))
                        return
                final_counts.append(len(store.query(driver="conc")))
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for index in range(total):
            put_run(store, f"conc{index:02d}", driver="conc", seed=index,
                    messages_per_round=[1, 2], bits_per_round=[10, 20])
        for thread in threads:
            thread.join(timeout=90)
        assert not errors, errors
        assert final_counts == [total, total, total]

    def test_concurrent_process_reader(self, store):
        """A second process sweeps while this one polls the same store."""
        if not store.backend.supports_concurrent_instances:
            pytest.skip(f"{store.scheme} locks the store file per process")
        url = f"{store.scheme}://{store.path}"
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", "--driver", "crash",
             "--n", "6", "--seeds", "0-1", "--f", "1", "--store", url],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True,
        )
        observed = 0
        try:
            # Poll the live store from this process while the sweep
            # writes from the other one.
            while process.poll() is None:
                observed = max(observed, store.stats()["total"])
                time.sleep(0.05)
        finally:
            stdout, stderr = process.communicate(timeout=300)
        assert process.returncode == 0, stderr
        runs = store.query(driver="crash")
        assert len(runs) == 2
        assert all(run.ok for run in runs)
        assert all(store.ledger(run.hash) is not None for run in runs)
        assert observed <= 2
        assert "2 cached" in subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--driver", "crash",
             "--n", "6", "--seeds", "0-1", "--f", "1", "--store", url],
            capture_output=True, env=env, text=True, check=True,
        ).stderr


class TestClosedStore:
    def test_use_after_close_is_an_error(self, tmp_path):
        store = RunStore(f"sqlite://{tmp_path}/runs.sqlite")
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.query()
