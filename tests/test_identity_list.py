"""Unit and property tests for the sparse identity bit vector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.identity_list import IdentityList
from repro.crypto.hashing import Fingerprinter


def dense(identity_list: IdentityList) -> list[int]:
    """Reference dense representation (1-indexed positions)."""
    return [identity_list[i] for i in range(1, identity_list.namespace + 1)]


class TestBits:
    def test_starts_empty(self):
        ids = IdentityList(10)
        assert ids.total_ones == 0
        assert dense(ids) == [0] * 10

    def test_set_and_get(self):
        ids = IdentityList(10)
        ids.set_bit(3)
        assert ids[3] == 1
        assert ids[4] == 0

    def test_set_is_idempotent(self):
        ids = IdentityList(10)
        ids.set_bit(3)
        ids.set_bit(3)
        assert ids.total_ones == 1

    def test_clear(self):
        ids = IdentityList(10)
        ids.set_bit(3)
        ids.clear_bit(3)
        assert ids[3] == 0

    def test_clear_missing_is_noop(self):
        ids = IdentityList(10)
        ids.clear_bit(3)
        assert ids.total_ones == 0

    def test_bounds_checked(self):
        ids = IdentityList(10)
        with pytest.raises(IndexError):
            ids.set_bit(0)
        with pytest.raises(IndexError):
            ids.set_bit(11)
        with pytest.raises(IndexError):
            _ = ids[11]

    def test_namespace_must_be_positive(self):
        with pytest.raises(ValueError):
            IdentityList(0)


class TestSegments:
    def test_ones_in_segment(self):
        ids = IdentityList(20)
        for position in (2, 5, 9, 15):
            ids.set_bit(position)
        assert ids.ones_in(3, 10) == [5, 9]
        assert ids.ones_in(1, 20) == [2, 5, 9, 15]
        assert ids.ones_in(6, 8) == []

    def test_count_matches_ones(self):
        ids = IdentityList(20)
        for position in (2, 5, 9, 15):
            ids.set_bit(position)
        assert ids.count_ones_in(3, 10) == 2
        assert ids.count_ones_in(1, 1) == 0

    def test_empty_segment_rejected(self):
        ids = IdentityList(20)
        with pytest.raises(ValueError):
            ids.ones_in(5, 4)


class TestRank:
    def test_ranks_are_one_based_and_order_preserving(self):
        ids = IdentityList(100)
        for position in (7, 30, 64):
            ids.set_bit(position)
        assert ids.rank_of(7) == 1
        assert ids.rank_of(30) == 2
        assert ids.rank_of(64) == 3

    def test_rank_requires_set_bit(self):
        ids = IdentityList(100)
        with pytest.raises(ValueError):
            ids.rank_of(7)

    @given(st.sets(st.integers(1, 200), min_size=1, max_size=40))
    def test_ranks_enumerate_1_to_k(self, positions):
        ids = IdentityList(200)
        for position in positions:
            ids.set_bit(position)
        ranks = [ids.rank_of(position) for position in sorted(positions)]
        assert ranks == list(range(1, len(positions) + 1))


class TestReplaceSegment:
    def test_replaces_with_left_packed_ones(self):
        ids = IdentityList(20)
        for position in (3, 6, 8, 12):
            ids.set_bit(position)
        ids.replace_segment(5, 10, 2)
        assert ids.ones() == [3, 5, 6, 12]

    def test_count_is_preserved_globally(self):
        ids = IdentityList(50)
        for position in (3, 20, 22, 27, 40):
            ids.set_bit(position)
        before_outside = ids.count_ones_in(1, 19) + ids.count_ones_in(31, 50)
        ids.replace_segment(20, 30, 3)
        assert ids.count_ones_in(20, 30) == 3
        after_outside = ids.count_ones_in(1, 19) + ids.count_ones_in(31, 50)
        assert before_outside == after_outside

    def test_rejects_overfull(self):
        ids = IdentityList(20)
        with pytest.raises(ValueError):
            ids.replace_segment(5, 7, 4)

    def test_zero_ones_clears_segment(self):
        ids = IdentityList(20)
        ids.set_bit(6)
        ids.replace_segment(5, 10, 0)
        assert ids.count_ones_in(5, 10) == 0


class TestFingerprints:
    HASHER = Fingerprinter(prime=(1 << 61) - 1, point=123_456_789)

    def test_equal_segments_hash_equal(self):
        a, b = IdentityList(64), IdentityList(64)
        for position in (3, 9, 17):
            a.set_bit(position)
            b.set_bit(position)
        assert a.fingerprint(self.HASHER, 1, 32) == b.fingerprint(self.HASHER, 1, 32)

    def test_shifted_segments_with_same_pattern_hash_equal(self):
        # The digest is relative to the segment start, as the recursion
        # requires when comparing equal-length segments.
        a, b = IdentityList(64), IdentityList(64)
        a.set_bit(3)
        b.set_bit(35)
        assert a.fingerprint(self.HASHER, 1, 32) == b.fingerprint(self.HASHER, 33, 64)

    def test_different_segments_hash_differently(self):
        a, b = IdentityList(64), IdentityList(64)
        a.set_bit(3)
        b.set_bit(4)
        assert a.fingerprint(self.HASHER, 1, 32) != b.fingerprint(self.HASHER, 1, 32)

    @settings(max_examples=50)
    @given(
        ones_a=st.sets(st.integers(1, 64), max_size=16),
        ones_b=st.sets(st.integers(1, 64), max_size=16),
    )
    def test_fingerprint_equality_iff_segment_equality(self, ones_a, ones_b):
        a, b = IdentityList(64), IdentityList(64)
        for position in ones_a:
            a.set_bit(position)
        for position in ones_b:
            b.set_bit(position)
        equal_digests = (
            a.fingerprint(self.HASHER, 1, 64) == b.fingerprint(self.HASHER, 1, 64)
        )
        assert equal_digests == (sorted(ones_a) == sorted(ones_b))


class TestEquality:
    def test_equal_lists(self):
        a, b = IdentityList(10), IdentityList(10)
        a.set_bit(4)
        b.set_bit(4)
        assert a == b

    def test_unequal_namespace(self):
        assert IdentityList(10) != IdentityList(11)

    def test_not_implemented_for_other_types(self):
        assert IdentityList(10).__eq__(42) is NotImplemented
