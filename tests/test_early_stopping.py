"""Tests for the early-stopping extension of the crash algorithm."""

from random import Random

import pytest

from repro.adversary.crash import CommitteeHunter, RandomCrash, ScheduledCrash
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming

FAST = CrashRenamingConfig(election_constant=4, early_stopping=True)
SLOW = CrashRenamingConfig(election_constant=4, early_stopping=False)


class TestEarlyStopping:
    def test_same_names_as_the_unmodified_protocol(self):
        n = 48
        fast = run_crash_renaming(range(1, n + 1), seed=1, config=FAST)
        slow = run_crash_renaming(range(1, n + 1), seed=1, config=SLOW)
        assert fast.outputs_by_uid() == slow.outputs_by_uid()

    def test_saves_rounds_when_failure_free(self):
        n = 64
        fast = run_crash_renaming(range(1, n + 1), seed=1, config=FAST)
        slow = run_crash_renaming(range(1, n + 1), seed=1, config=SLOW)
        assert fast.rounds < slow.rounds
        assert fast.metrics.correct_messages < slow.metrics.correct_messages

    def test_still_correct_under_hunter(self):
        n = 48
        for seed in range(4):
            result = run_crash_renaming(
                range(1, n + 1),
                adversary=CommitteeHunter(n // 2, Random(seed)),
                seed=seed, config=FAST,
            )
            outputs = result.outputs_by_uid()
            values = list(outputs.values())
            assert len(set(values)) == len(values)
            assert all(1 <= value <= n for value in values)

    def test_still_correct_under_random_crashes(self):
        n = 32
        for seed in range(4):
            result = run_crash_renaming(
                range(1, n + 1),
                adversary=RandomCrash(n // 3, 0.08, Random(seed)),
                seed=seed, config=FAST,
            )
            outputs = result.outputs_by_uid()
            values = list(outputs.values())
            assert len(set(values)) == len(values)

    def test_partial_done_delivery_is_safe(self):
        """A committee member crashes mid-DONE: some nodes stop, the
        rest keep running the unmodified protocol to the end."""
        n = 16
        # The committee constant 256 elects everyone; DONE appears once
        # all are singletons, around phase log2(n) (round ~3*4*... );
        # crash one member mid-broadcast at every plausible DONE round.
        for done_round in (15, 18, 21, 24):
            result = run_crash_renaming(
                range(1, n + 1),
                adversary=ScheduledCrash(
                    {done_round: [0]}, deliver_prefix={0: n // 2}
                ),
                seed=done_round,
                config=CrashRenamingConfig(early_stopping=True),
            )
            outputs = result.outputs_by_uid()
            values = list(outputs.values())
            assert len(set(values)) == len(values)
            assert all(1 <= value <= n for value in values)

    def test_default_config_is_paper_faithful(self):
        assert CrashRenamingConfig().early_stopping is False
