"""Per-phase verification of the paper's key lemmas.

The instrumentation hooks (``CrashRenamingNode.phase_log``,
``ByzantineRenamingNode.segment_log``) expose each node's state at the
end of every phase / loop iteration, so the lemmas can be checked as
*invariants over the whole execution*, not just as end-state facts:

* **Lemma 2.3** -- at the end of every phase, for every active node
  ``v``, the number of active nodes whose interval is contained in
  ``I_v`` is at most ``|I_v|`` (the slot-capacity invariant that makes
  uniqueness deterministic).
* **Lemma 2.5** -- at the end of every phase, the spread of ``p``
  values among active nodes is at most 1.
* Depth/interval monotonicity -- intervals only shrink along the tree,
  depths and ``p`` never decrease.
* **Lemma 3.8** -- all correct committee members process the identical
  sequence of segments.
* **Lemma 3.11 (consequence)** -- for every correct node, strictly more
  than ``b_max`` correct committee members agree on its rank and keep
  its position outside their dirty intervals.
"""

from random import Random

import pytest

from repro.adversary import byzantine as byz
from repro.adversary.crash import (
    CommitteeHunter,
    MidSendPartitioner,
    RandomCrash,
)
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming

CONFIG = CrashRenamingConfig(election_constant=4)


def crash_executions():
    n = 32
    yield run_crash_renaming(range(1, n + 1), seed=1, config=CONFIG)
    for seed in range(3):
        yield run_crash_renaming(
            range(1, n + 1),
            adversary=CommitteeHunter(n // 2, Random(seed)),
            seed=seed, config=CONFIG,
        )
        yield run_crash_renaming(
            range(1, n + 1),
            adversary=MidSendPartitioner(n // 2, Random(seed), per_round=2),
            seed=seed, config=CONFIG,
        )
        yield run_crash_renaming(
            range(1, n + 1),
            adversary=RandomCrash(n // 2, 0.08, Random(seed)),
            seed=seed, config=CONFIG,
        )


def phase_states(result, phase):
    """(interval, depth, p) of every node active at the end of `phase`."""
    return [
        process.phase_log[phase]
        for process in result.processes
        if len(process.phase_log) > phase
    ]


class TestCrashLemmas:
    def test_lemma_2_3_capacity_invariant_every_phase(self):
        for result in crash_executions():
            phases = max(len(p.phase_log) for p in result.processes)
            for phase in range(phases):
                states = phase_states(result, phase)
                for interval_v, _, _, _ in states:
                    inside = sum(
                        1 for interval_u, _, _, _ in states
                        if interval_v.contains_interval(interval_u)
                    )
                    assert inside <= interval_v.size, (
                        f"phase {phase}: {inside} nodes inside "
                        f"{interval_v} of size {interval_v.size}"
                    )

    def test_lemma_2_5_p_gap_every_phase(self):
        for result in crash_executions():
            phases = max(len(p.phase_log) for p in result.processes)
            for phase in range(phases):
                p_values = [p for _, _, p, _ in phase_states(result, phase)]
                assert max(p_values) - min(p_values) <= 1

    def test_intervals_only_descend_the_tree(self):
        for result in crash_executions():
            for process in result.processes:
                previous = None
                for interval, depth, p, _ in process.phase_log:
                    if previous is not None:
                        prev_interval, prev_depth, prev_p = previous
                        assert prev_interval.contains_interval(interval)
                        assert depth >= prev_depth
                        assert p >= prev_p
                    previous = (interval, depth, p)

    def test_lemma_2_2_progress_with_live_committee(self):
        """Whenever a committee member was elected at a phase start and
        survived the phase, the minimum depth strictly increased."""
        result = run_crash_renaming(range(1, 33), seed=2, config=CONFIG)
        logs = [p.phase_log for p in result.processes]
        phases = len(logs[0])
        for phase in range(1, phases):
            min_before = min(log[phase - 1][1] for log in logs)
            min_after = min(log[phase][1] for log in logs)
            committee_alive = any(log[phase - 1][3] for log in logs)
            if committee_alive and min_before <= 5:  # ceil(log2 32)
                assert min_after >= min_before + 1


UIDS = [7, 19, 55, 102, 200, 333, 404, 512, 640, 777, 900, 1010, 1500]


class TestByzantineLemmas:
    CONFIG = ByzantineRenamingConfig(max_byzantine=4)

    def byz_executions(self):
        yield {}, run_byzantine_renaming(
            UIDS, namespace=2048, config=self.CONFIG, shared_seed=1, seed=2,
        )
        for seed, corrupted in (
            (3, {UIDS[4]: byz.make_withholder(0.5)}),
            (4, {UIDS[1]: byz.make_equivocator(),
                 UIDS[8]: byz.make_withholder(0.3)}),
            (5, {UIDS[0]: byz.silent, UIDS[6]: byz.crash_simulator,
                 UIDS[11]: byz.make_withholder(0.5)}),
        ):
            yield corrupted, run_byzantine_renaming(
                UIDS, namespace=2048, byzantine=corrupted,
                config=self.CONFIG, shared_seed=seed, seed=seed + 10,
            )

    def test_lemma_3_8_identical_segment_logs(self):
        for corrupted, result in self.byz_executions():
            logs = [
                p.segment_log for p in result.processes
                if getattr(p, "was_committee", False) and not p.byzantine
            ]
            assert logs, "no correct committee members"
            assert all(log == logs[0] for log in logs)

    def test_segment_logs_partition_the_namespace(self):
        """J union J-hat is always a partition of [1, N] (Lemma 3.8's
        second clause): the *processed leaves* of the recursion tree --
        segments never re-split -- tile [1, N] exactly."""
        for corrupted, result in self.byz_executions():
            log = next(
                p.segment_log for p in result.processes
                if getattr(p, "was_committee", False) and not p.byzantine
            )
            processed = set(log)
            leaves = []
            for lo, hi in log:
                mid = (lo + hi) // 2
                is_split = lo != hi and ((lo, mid) in processed
                                         and (mid + 1, hi) in processed)
                if not is_split:
                    leaves.append((lo, hi))
            leaves.sort()
            position = 1
            for lo, hi in leaves:
                assert lo == position, f"gap before {lo} in {leaves}"
                position = hi + 1
            assert position == 2048 + 1

    def test_lemma_3_11_rank_support_exceeds_b_max(self):
        """For every correct node, the committee members that are
        non-dirty at its position and agree on its rank outnumber
        b_max -- the property that makes distribution majority-safe."""
        for corrupted, result in self.byz_executions():
            params = self.CONFIG.parameters(len(UIDS))
            committee = [
                p for p in result.processes
                if getattr(p, "was_committee", False) and not p.byzantine
            ]
            outputs = result.outputs_by_uid()
            for uid, name in outputs.items():
                supporters = 0
                for member in committee:
                    dirty = any(lo <= uid <= hi
                                for lo, hi in member.dirty_intervals)
                    if not dirty:
                        supporters += 1
                assert supporters >= params.b_max + 1, (
                    f"uid {uid}: only {supporters} non-dirty members"
                )
