"""Tests for the Table 1 baseline algorithms."""

import math
from random import Random

import pytest

from repro.adversary.crash import MidSendPartitioner, RandomCrash, ScheduledCrash
from repro.baselines.collect_rank import run_collect_rank
from repro.baselines.obg_halving import run_obg_halving


def assert_strong(result, n):
    outputs = result.outputs_by_uid()
    values = list(outputs.values())
    assert len(set(values)) == len(values)
    assert all(1 <= value <= n for value in values)


class TestObgHalvingFailureFree:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 17, 32, 100])
    def test_exact_renaming(self, n):
        result = run_obg_halving(range(5, 5 + 2 * n, 2), seed=n)
        outputs = result.outputs_by_uid()
        assert sorted(outputs.values()) == list(range(1, n + 1))

    def test_round_count_is_exactly_log_n(self):
        for n in (2, 3, 16, 33):
            result = run_obg_halving(range(1, n + 1), seed=1)
            assert result.rounds == math.ceil(math.log2(n))

    def test_message_count_is_n_squared_per_round(self):
        n = 24
        result = run_obg_halving(range(1, n + 1), seed=1)
        assert result.metrics.correct_messages == n * n * result.rounds

    def test_all_to_all_regardless_of_failures(self):
        """The baseline's defining flaw: cost does not adapt to f."""
        n = 24
        quiet = run_obg_halving(range(1, n + 1), seed=1)
        per_node_quiet = quiet.metrics.correct_messages / n
        noisy = run_obg_halving(
            range(1, n + 1),
            adversary=RandomCrash(4, 0.05, Random(2)), seed=1,
        )
        survivors = n - len(noisy.crashed)
        per_node_noisy = noisy.metrics.correct_messages / max(survivors, 1)
        assert per_node_noisy == pytest.approx(per_node_quiet, rel=0.25)


class TestObgHalvingUnderCrashes:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_crashes(self, seed):
        n = 32
        result = run_obg_halving(
            range(1, n + 1),
            adversary=RandomCrash(n // 2, 0.2, Random(seed)), seed=seed,
        )
        assert_strong(result, n)

    @pytest.mark.parametrize("seed", range(6))
    def test_view_splitting_crashes(self, seed):
        n = 32
        result = run_obg_halving(
            range(1, n + 1),
            adversary=MidSendPartitioner(n // 2, Random(seed), per_round=4),
            seed=seed,
        )
        assert_strong(result, n)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="distinct"):
            run_obg_halving([2, 2])


class TestCollectRankFailureFree:
    def test_names_are_identity_ranks(self):
        uids = [50, 7, 99, 23]
        result = run_collect_rank(uids, seed=1, assumed_faults=2)
        assert result.outputs_by_uid() == {7: 1, 23: 2, 50: 3, 99: 4}

    def test_order_preserving(self):
        uids = list(range(100, 0, -7))
        result = run_collect_rank(uids, seed=1, assumed_faults=3)
        outputs = result.outputs_by_uid()
        ordered = sorted(outputs)
        assert all(outputs[a] < outputs[b] for a, b in zip(ordered, ordered[1:]))

    def test_rounds_grow_with_assumed_faults_not_actual(self):
        uids = list(range(1, 21))
        light = run_collect_rank(uids, assumed_faults=2, seed=1)
        heavy = run_collect_rank(uids, assumed_faults=15, seed=1)
        assert light.rounds == 3
        assert heavy.rounds == 16

    def test_default_provisioning_is_n_minus_one(self):
        uids = list(range(1, 11))
        result = run_collect_rank(uids, seed=1)
        assert result.rounds == 10

    def test_messages_carry_linear_bits(self):
        n = 20
        result = run_collect_rank(range(1, n + 1), seed=1, assumed_faults=2)
        # After the first round every gossip carries ~n identities.
        assert result.metrics.max_message_bits >= n * 5

    def test_invalid_assumed_faults(self):
        with pytest.raises(ValueError):
            run_collect_rank([1, 2, 3], assumed_faults=3)


class TestCollectRankUnderCrashes:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_crashes_within_provisioning(self, seed):
        n = 24
        budget = 8
        result = run_collect_rank(
            range(1, n + 1),
            adversary=RandomCrash(budget, 0.15, Random(seed)),
            assumed_faults=budget, seed=seed,
        )
        assert_strong(result, n)

    def test_chain_of_mid_send_crashes(self):
        # A relay chain: each round one node crashes mid-broadcast,
        # leaking its knowledge to exactly one survivor.
        n = 10
        schedule = {r: [r - 1] for r in range(1, 6)}
        prefix = {victim: 1 for victim in range(5)}
        result = run_collect_rank(
            range(1, n + 1),
            adversary=ScheduledCrash(schedule, deliver_prefix=prefix),
            assumed_faults=6, seed=3,
        )
        assert_strong(result, n)

    def test_exhausted_provisioning_can_break_uniqueness(self):
        """Anti-test: crash budget beyond the provisioned bound may
        leave inconsistent knowledge -- the reason this family must
        provision for the worst case (and pay Theta(n) rounds)."""
        n = 8
        # 4 crashes but provisioning for 1 (2 rounds): build a hiding
        # chain for identity 1: node 0 tells only node 1, which tells
        # only node 2, which dies too.
        schedule = {1: [0], 2: [1]}
        prefix = {0: 2, 1: 3}
        result = run_collect_rank(
            range(1, n + 1),
            adversary=ScheduledCrash(schedule, deliver_prefix=prefix),
            assumed_faults=1, seed=5,
        )
        outputs = result.outputs_by_uid()
        values = list(outputs.values())
        # Not asserting failure (the chain may misfire), only that the
        # run completes; uniqueness is NOT guaranteed here by design.
        assert len(values) == n - 2
