"""Tests for the approximate-agreement substrate."""

from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.crash import MidSendPartitioner, RandomCrash, ScheduledCrash
from repro.consensus.approx_agreement import (
    ApproxAgreementNode,
    rounds_needed,
    run_approximate_agreement,
)


def spread_of(result):
    values = list(result.outputs_by_uid().values())
    return max(values) - min(values)


class TestRoundsNeeded:
    def test_already_converged(self):
        assert rounds_needed(0.5, 1.0) == 0

    def test_halving_count(self):
        assert rounds_needed(8.0, 1.0) == 3
        assert rounds_needed(10.0, 1.0) == 4

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            rounds_needed(1.0, 0.0)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            ApproxAgreementNode(uid=1, initial=0.0, rounds=-1)


class TestFailureFree:
    def test_converges_to_epsilon(self):
        inputs = [(i + 1, float(i * 10)) for i in range(8)]
        result = run_approximate_agreement(inputs, epsilon=0.5)
        assert spread_of(result) <= 0.5

    def test_validity_outputs_inside_input_range(self):
        inputs = [(1, 3.0), (2, 7.0), (3, 5.0)]
        result = run_approximate_agreement(inputs, epsilon=0.1)
        for value in result.outputs_by_uid().values():
            assert 3.0 <= value <= 7.0

    def test_equal_inputs_need_zero_rounds(self):
        inputs = [(1, 4.0), (2, 4.0)]
        result = run_approximate_agreement(inputs, epsilon=0.1)
        assert result.rounds == 0
        assert spread_of(result) == 0

    def test_single_node(self):
        result = run_approximate_agreement([(5, 9.0)], epsilon=0.1)
        assert result.outputs_by_uid() == {5: 9.0}

    def test_input_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            run_approximate_agreement([], epsilon=0.1)
        with pytest.raises(ValueError, match="distinct"):
            run_approximate_agreement([(1, 0.0), (1, 1.0)], epsilon=0.1)


class TestUnderCrashes:
    @pytest.mark.parametrize("seed", range(5))
    def test_epsilon_agreement_with_random_crashes(self, seed):
        n = 24
        inputs = [(i + 1, float(i)) for i in range(n)]
        result = run_approximate_agreement(
            inputs, epsilon=0.25,
            adversary=RandomCrash(n // 3, 0.1, Random(seed)), seed=seed,
        )
        assert spread_of(result) <= 0.25

    @pytest.mark.parametrize("seed", range(5))
    def test_mid_send_crashes_cannot_break_validity(self, seed):
        n = 16
        inputs = [(i + 1, float(i % 5)) for i in range(n)]
        result = run_approximate_agreement(
            inputs, epsilon=0.25,
            adversary=MidSendPartitioner(n // 2, Random(seed), per_round=2),
            seed=seed,
        )
        for value in result.outputs_by_uid().values():
            assert 0.0 <= value <= 4.0
        assert spread_of(result) <= 0.25

    def test_extreme_holder_crash(self):
        """The node holding the maximum crashes mid-broadcast so only
        half the network averages it in -- the canonical divergence
        attack; midpoint still converges."""
        inputs = [(1, 100.0)] + [(i, 0.0) for i in range(2, 17)]
        result = run_approximate_agreement(
            inputs, epsilon=0.5,
            adversary=ScheduledCrash({1: [0]}, deliver_prefix={0: 8}),
            seed=3,
        )
        assert spread_of(result) <= 0.5


class TestConvergenceRate:
    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.floats(0, 100, allow_nan=False), min_size=3,
                        max_size=12),
        seed=st.integers(0, 10**6),
    )
    def test_epsilon_agreement_property(self, values, seed):
        inputs = [(i + 1, value) for i, value in enumerate(values)]
        result = run_approximate_agreement(inputs, epsilon=0.5, seed=seed)
        assert spread_of(result) <= 0.5 + 1e-4
        low, high = min(values), max(values)
        for value in result.outputs_by_uid().values():
            assert low - 1e-4 <= value <= high + 1e-4
