"""The serve-level chaos frontier: classification, ladder, benchmark."""

import json

from repro.faults.degradation import (
    CRASHED,
    OUTCOMES,
    SAFE_STALLED,
    SAFE_TERMINATED,
    SAFETY_VIOLATED,
    outcome_rank,
)
from repro.serve.chaos import (
    DEFAULT_CHAOS_RESILIENCE,
    SCENARIO_BASELINE,
    SCENARIO_RESILIENT,
    ChaosRung,
    classify_serve_run,
    default_chaos_ladder,
    format_frontier,
    goodput,
    run_chaos,
    run_rung,
)
from repro.serve.loadgen import LoadProfile

#: Small enough to keep the whole ladder in CI seconds, rich enough
#: that the faulted shard sees several epochs inside the window.
PROFILE = LoadProfile(clients=40, requests=1_200, shards=2, max_batch=16,
                      max_wait=0.002, arrival_rate=20_000.0,
                      namespace=5_000, seed=3)


def report_stub(**overrides):
    report = {
        "unique": True, "unresolved": 0, "degraded": 0, "shed": 0,
        "deadline_expired": 0, "errors": 0, "renames": 100,
        "rename_misses": 10, "renamed": 90,
    }
    report.update(overrides)
    return report


class TestClassifyServeRun:
    def test_clean_run_is_safe_terminated(self):
        assert classify_serve_run(report_stub()) == (SAFE_TERMINATED, {})

    def test_failed_requests_are_safe_stalled(self):
        outcome, detail = classify_serve_run(report_stub(degraded=3, shed=1))
        assert outcome == SAFE_STALLED
        assert detail["degraded"] == 3 and detail["shed"] == 1

    def test_duplicate_names_dominate_everything(self):
        outcome, detail = classify_serve_run(
            report_stub(unique=False, unresolved=5, degraded=3))
        assert outcome == SAFETY_VIOLATED
        assert detail == {"invariant": "unique-names"}

    def test_unresolved_futures_are_crashed(self):
        outcome, detail = classify_serve_run(report_stub(unresolved=2))
        assert outcome == CRASHED
        assert detail["unresolved"] == 2

    def test_goodput_ignores_legitimate_misses(self):
        assert goodput(report_stub()) == 1.0
        assert goodput(report_stub(renamed=45)) == 0.5

    def test_outcome_rank_orders_the_vocabulary(self):
        ranks = [outcome_rank(outcome) for outcome in OUTCOMES]
        assert ranks == sorted(ranks)
        assert outcome_rank(SAFE_TERMINATED) < outcome_rank(SAFETY_VIOLATED)


class TestLadder:
    def test_full_ladder_shape(self):
        ladder = default_chaos_ladder()
        labels = [rung.label for rung in ladder]
        assert labels[0] == "none"
        assert len(labels) == len(set(labels))
        windowed = [rung for rung in ladder if rung.window is not None]
        persistent = [rung for rung in ladder
                      if rung.window is None and rung.spec]
        assert windowed and persistent

    def test_quick_ladder_is_a_subset(self):
        full = {rung.label for rung in default_chaos_ladder()}
        quick = default_chaos_ladder(quick=True)
        assert {rung.label for rung in quick} <= full
        assert quick[0].label == "none"
        assert len(quick) < len(full)

    def test_rung_spec_json_round_trips(self):
        rung = ChaosRung("x", ({"kind": "omission", "p": 0.5},), (1, 4))
        decoded = json.loads(rung.spec_json)
        assert decoded[0]["kind"] == "omission"


class TestRunRung:
    def test_control_rung_both_arms(self):
        control = default_chaos_ladder(quick=True)[0]
        for resilience in (DEFAULT_CHAOS_RESILIENCE, None):
            row = run_rung(PROFILE, control, resilience=resilience)
            assert row["outcome"] == SAFE_TERMINATED
            assert row["goodput"] == 1.0
            assert row["unique"] is True

    def test_windowed_outage_resilient_beats_baseline(self):
        rung = ChaosRung("omission-100%-window",
                         ({"kind": "omission", "p": 1.0},), (1, 9))
        resilient = run_rung(PROFILE, rung,
                             resilience=DEFAULT_CHAOS_RESILIENCE)
        baseline = run_rung(PROFILE, rung, resilience=None)
        assert resilient["scenario"] == SCENARIO_RESILIENT
        assert baseline["scenario"] == SCENARIO_BASELINE
        assert resilient["outcome"] == SAFE_TERMINATED
        assert resilient["goodput"] >= 0.95
        assert resilient["breaker_state"] == "closed"
        assert baseline["outcome"] == SAFE_STALLED
        assert baseline["goodput"] < resilient["goodput"]
        assert baseline["retries"] == 0
        # Same seeded trace on both arms.
        assert resilient["trace_sha256"] == baseline["trace_sha256"]

    def test_rows_are_reproducible(self):
        rung = ChaosRung("omission-50%-window",
                         ({"kind": "omission", "p": 0.5},), (1, 9))
        rows = [run_rung(PROFILE, rung,
                         resilience=DEFAULT_CHAOS_RESILIENCE)
                for _ in range(2)]
        assert rows[0] == rows[1]


class TestRunChaos:
    def test_quick_frontier_rows_and_summary(self):
        frontier = run_chaos(PROFILE,
                             ladder=default_chaos_ladder(quick=True))
        rows = frontier["rows"]
        assert len(rows) == 2 * len(default_chaos_ladder(quick=True))
        scenarios = {row["scenario"] for row in rows}
        assert scenarios == {SCENARIO_RESILIENT, SCENARIO_BASELINE}
        for row in rows:
            assert row["outcome"] in OUTCOMES
            assert row["unique"] is True
        summary = {entry["scenario"]: entry for entry in frontier["summary"]}
        assert set(summary) == scenarios
        table = format_frontier(rows)
        assert "omission-100%-persistent" in table
        assert SCENARIO_RESILIENT in table


class TestBenchmarkChecks:
    def test_check_frontier_flags_regressions(self):
        from benchmarks.chaos import check_frontier

        good = [
            {"rung": "none", "scenario": SCENARIO_RESILIENT,
             "outcome": SAFE_TERMINATED, "goodput": 1.0, "unique": True,
             "unresolved": 0, "breaker_state": "closed"},
            {"rung": "omission-100%-window", "scenario": SCENARIO_RESILIENT,
             "outcome": SAFE_TERMINATED, "goodput": 1.0, "unique": True,
             "unresolved": 0, "breaker_state": "closed"},
        ]
        assert check_frontier(good) == []
        bad = [dict(row) for row in good]
        bad[0]["outcome"] = SAFE_STALLED
        bad[1]["goodput"] = 0.5
        bad[1]["breaker_state"] = "open"
        bad[1]["unique"] = False
        problems = check_frontier(bad)
        assert any("control" in p for p in problems)
        assert any("goodput" in p for p in problems)
        assert any("breaker" in p for p in problems)
        assert any("unique" in p for p in problems)
