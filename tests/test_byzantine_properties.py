"""Property tests: Byzantine renaming invariants over random adversaries.

Hypothesis draws the static corrupt set, the mix of attack strategies,
and the randomness seeds; the invariants checked are Theorem 1.3's
guarantees for the correct nodes -- distinct, in-range, order-preserving
names -- which must hold for *every* admissible adversary.
"""

from random import Random

from hypothesis import given, settings, strategies as st

from repro.adversary import byzantine as byz
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)

N = 10
NAMESPACE = 512
F_MAX = 3  # largest f < 10/3

STRATEGIES = [
    byz.silent,
    byz.crash_simulator,
    byz.make_withholder(0.5),
    byz.make_withholder(0.25),
    byz.make_equivocator(),
]


@settings(max_examples=25, deadline=None)
@given(
    uid_seed=st.integers(0, 10**6),
    corrupt_seed=st.integers(0, 10**6),
    strategy_picks=st.lists(
        st.integers(0, len(STRATEGIES) - 1), min_size=F_MAX, max_size=F_MAX
    ),
    f=st.integers(0, F_MAX),
    shared_seed=st.integers(0, 10**6),
)
def test_correct_nodes_always_get_valid_names(
    uid_seed, corrupt_seed, strategy_picks, f, shared_seed
):
    uids = sorted(Random(uid_seed).sample(range(1, NAMESPACE + 1), N))
    # Carlo commits to the corrupt set before shared randomness exists:
    # corrupt_seed is drawn independently of shared_seed.
    corrupt = byz.corrupt_set(uids, f, Random(corrupt_seed))
    corrupted = {
        uid: STRATEGIES[strategy_picks[i]]
        for i, uid in enumerate(corrupt)
    }
    result = run_byzantine_renaming(
        uids,
        namespace=NAMESPACE,
        byzantine=corrupted,
        config=ByzantineRenamingConfig(
            max_byzantine=F_MAX, consensus_iterations=10
        ),
        shared_seed=shared_seed,
        seed=shared_seed + 1,
    )
    outputs = result.outputs_by_uid()
    correct = [uid for uid in uids if uid not in corrupted]
    assert set(outputs) == set(correct)
    values = [outputs[uid] for uid in sorted(correct)]
    # Uniqueness, strongness, order preservation.
    assert len(set(values)) == len(values)
    assert all(1 <= value <= N for value in values)
    assert values == sorted(values)


@settings(max_examples=15, deadline=None)
@given(shared_seed=st.integers(0, 10**6))
def test_honest_runs_are_one_iteration(shared_seed):
    uids = sorted(Random(shared_seed).sample(range(1, NAMESPACE + 1), N))
    result = run_byzantine_renaming(
        uids, namespace=NAMESPACE,
        config=ByzantineRenamingConfig(max_byzantine=F_MAX),
        shared_seed=shared_seed, seed=shared_seed + 1,
    )
    committee = [p for p in result.processes if p.was_committee]
    assert committee
    assert all(p.segments_processed == 1 for p in committee)
