"""Unit and property tests for the interval-halving tree."""

import pytest
from hypothesis import given, strategies as st

from repro.core.intervals import Interval, root_interval, tree_depth_of


class TestIntervalBasics:
    def test_size_of_singleton(self):
        assert Interval(4, 4).size == 1

    def test_size_of_range(self):
        assert Interval(3, 10).size == 8

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_is_singleton(self):
        assert Interval(7, 7).is_singleton
        assert not Interval(7, 8).is_singleton

    def test_membership(self):
        interval = Interval(3, 6)
        assert 3 in interval
        assert 6 in interval
        assert 2 not in interval
        assert 7 not in interval

    def test_contains_interval(self):
        outer = Interval(1, 8)
        assert outer.contains_interval(Interval(1, 8))
        assert outer.contains_interval(Interval(3, 5))
        assert not outer.contains_interval(Interval(0, 3))
        assert not outer.contains_interval(Interval(5, 9))

    def test_ordering_matches_figure3_sort_rule(self):
        # Sorted by lo ascending, which is the "min(I) increasing" rule.
        assert Interval(1, 4) < Interval(2, 3)
        assert Interval(2, 2) < Interval(2, 3)

    def test_repr(self):
        assert repr(Interval(2, 5)) == "[2,5]"


class TestHalving:
    def test_paper_split_rule(self):
        # bot([l,r]) = [l, floor((l+r)/2)], top = [floor((l+r)/2)+1, r].
        interval = Interval(1, 7)
        assert interval.bot() == Interval(1, 4)
        assert interval.top() == Interval(5, 7)

    def test_even_split(self):
        interval = Interval(1, 8)
        assert interval.bot() == Interval(1, 4)
        assert interval.top() == Interval(5, 8)

    def test_two_element_split(self):
        interval = Interval(3, 4)
        assert interval.bot() == Interval(3, 3)
        assert interval.top() == Interval(4, 4)

    def test_singleton_has_no_children(self):
        with pytest.raises(ValueError):
            Interval(2, 2).bot()
        with pytest.raises(ValueError):
            Interval(2, 2).top()

    def test_halves_returns_both_children(self):
        assert Interval(1, 3).halves() == (Interval(1, 2), Interval(3, 3))

    @given(lo=st.integers(1, 1000), size=st.integers(2, 1000))
    def test_children_partition_parent(self, lo, size):
        parent = Interval(lo, lo + size - 1)
        bot, top = parent.halves()
        assert bot.hi + 1 == top.lo
        assert bot.lo == parent.lo
        assert top.hi == parent.hi
        assert bot.size + top.size == parent.size

    @given(lo=st.integers(1, 1000), size=st.integers(2, 1000))
    def test_bot_never_smaller_than_top(self, lo, size):
        parent = Interval(lo, lo + size - 1)
        bot, top = parent.halves()
        assert bot.size in (top.size, top.size + 1)


class TestTree:
    def test_root(self):
        assert root_interval(10) == Interval(1, 10)

    def test_root_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            root_interval(0)

    def test_depth_of_root_is_zero(self):
        assert tree_depth_of(Interval(1, 8), 8) == 0

    def test_depth_of_children(self):
        assert tree_depth_of(Interval(1, 4), 8) == 1
        assert tree_depth_of(Interval(5, 8), 8) == 1

    def test_depth_of_leaf(self):
        assert tree_depth_of(Interval(3, 3), 8) == 3

    def test_uneven_tree_has_shallow_singleton(self):
        # For n = 3 the vertex [3,3] sits at depth 1 -- the case the
        # committee's singleton-advance rule exists for.
        assert tree_depth_of(Interval(3, 3), 3) == 1
        assert tree_depth_of(Interval(1, 2), 3) == 1

    def test_non_vertex_rejected(self):
        with pytest.raises(ValueError):
            tree_depth_of(Interval(2, 5), 8)

    def test_straddling_interval_rejected(self):
        with pytest.raises(ValueError):
            tree_depth_of(Interval(4, 5), 8)

    @given(n=st.integers(1, 512), data=st.data())
    def test_every_leaf_reachable_at_depth_at_most_ceil_log(self, n, data):
        import math

        leaf = data.draw(st.integers(1, n))
        depth = tree_depth_of(Interval(leaf, leaf), n)
        bound = math.ceil(math.log2(n)) if n > 1 else 0
        assert depth <= bound

    @given(n=st.integers(2, 256), data=st.data())
    def test_descent_is_consistent_with_containment(self, n, data):
        # Walk a random path down; every vertex on it contains the leaf.
        leaf = data.draw(st.integers(1, n))
        current = root_interval(n)
        while not current.is_singleton:
            assert leaf in current
            bot, top = current.halves()
            current = bot if leaf in bot else top
        assert current == Interval(leaf, leaf)
