"""Shared test harnesses.

`SubprotocolHarness` runs one in-committee subprotocol (graded
broadcast, validator, or binary consensus) as a complete network
execution: every link is a committee member, honest members run the
subprotocol generator verbatim, and Byzantine members run the same
schedule through a corrupting :class:`CommitteeComm` that equivocates
arbitrarily per receiver -- the strongest attack expressible against
these thresholds short of breaking lockstep (going silent covers that).
"""

from __future__ import annotations

from random import Random
from typing import Callable, Optional, Sequence

from repro.consensus.comm import CommitteeComm
from repro.consensus.graded import BOTTOM
from repro.crypto.shared_randomness import SharedRandomness
from repro.sim.messages import CostModel
from repro.sim.node import Context, Process, Program
from repro.sim.runner import ExecutionResult, run_network

#: ``subprogram(comm, ctx, my_input)`` -> generator returning the output.
Subprogram = Callable[[CommitteeComm, Context, object], object]


class RandomCorruptComm(CommitteeComm):
    """Equivocates: every outgoing value is drawn fresh per receiver."""

    def __init__(self, view, b_max, rng: Random):
        super().__init__(view, b_max)
        self.rng = rng

    def outgoing_value(self, kind, value, receiver):
        menu = [value, 0, 1, BOTTOM, (self.rng.randrange(1 << 20),
                                      self.rng.randrange(64))]
        if value in (0, 1):
            menu.append(1 - value)
        return self.rng.choice(menu)


class SubprotocolMember(Process):
    """One committee member running ``subprogram`` as its whole program."""

    def __init__(self, uid: int, subprogram: Subprogram, my_input: object,
                 b_max: int, corrupt_rng: Optional[Random] = None,
                 silent: bool = False):
        super().__init__(uid)
        self.subprogram = subprogram
        self.my_input = my_input
        self.b_max = b_max
        self.corrupt_rng = corrupt_rng
        self.silent = silent
        self.byzantine = corrupt_rng is not None or silent

    def program(self, ctx: Context) -> Program:
        if self.silent:
            while True:
                yield []
        view = range(ctx.n)
        if self.corrupt_rng is not None:
            comm = RandomCorruptComm(view, self.b_max, self.corrupt_rng)
        else:
            comm = CommitteeComm(view, self.b_max)
        output = yield from self.subprogram(comm, ctx, self.my_input)
        return output


def run_subprotocol(
    subprogram: Subprogram,
    honest_inputs: Sequence[object],
    n_byzantine: int = 0,
    *,
    byzantine_silent: bool = False,
    seed: int = 0,
    shared_seed: int = 0,
) -> ExecutionResult:
    """Run ``subprogram`` among honest + Byzantine committee members.

    ``b_max`` is set to the largest bound the honest quorum supports
    (``(|G| - 1) // 2``); callers must keep ``n_byzantine <= b_max``.
    """
    n_honest = len(honest_inputs)
    b_max = max(0, (n_honest - 1) // 2)
    if n_byzantine > b_max:
        raise ValueError(
            f"{n_byzantine} Byzantine members exceed b_max={b_max} "
            f"for {n_honest} honest members"
        )
    rng = Random(seed)
    processes: list[Process] = [
        SubprotocolMember(uid=i + 1, subprogram=subprogram,
                          my_input=value, b_max=b_max)
        for i, value in enumerate(honest_inputs)
    ]
    for j in range(n_byzantine):
        processes.append(
            SubprotocolMember(
                uid=n_honest + j + 1,
                subprogram=subprogram,
                my_input=0,
                b_max=b_max,
                corrupt_rng=None if byzantine_silent else Random(rng.getrandbits(32)),
                silent=byzantine_silent,
            )
        )
    n = len(processes)
    cost = CostModel(n=n, namespace=max(n, 1 << 20))
    return run_network(
        processes, cost,
        shared=SharedRandomness(shared_seed),
        seed=seed + 1,
    )


def honest_outputs(result: ExecutionResult) -> list[object]:
    """Outputs of the honest members, in link order."""
    return [
        result.results[index]
        for index in sorted(result.results)
        if index not in result.byzantine
    ]
