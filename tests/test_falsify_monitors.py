"""Tests for the per-round invariant monitors."""

import pytest

from repro.adversary.base import CrashAdversary, NoCrashes
from repro.falsify.monitors import (
    CrashBudget,
    InvariantViolation,
    LedgerMonotone,
    NamespaceBounds,
    RoundBudget,
    UniqueNames,
    decided_correct,
    default_monitors,
    default_watchdog_rounds,
)
from repro.falsify.scenarios import (
    DEFAULT_SCENARIOS,
    make_adversary,
    monitors_for,
    resolve_scenario,
    run_scenario,
)
from repro.sim.messages import CostModel
from repro.sim.node import IdleProcess
from repro.sim.runner import run_network


class FakeProcess:
    def __init__(self, byzantine=False):
        self.byzantine = byzantine


class FakeMetrics:
    def __init__(self, messages_per_round=(), bits_per_round=(),
                 max_message_bits=0, rounds=None):
        self.messages_per_round = list(messages_per_round)
        self.bits_per_round = list(bits_per_round)
        self.total_messages = sum(self.messages_per_round)
        self.total_bits = sum(self.bits_per_round)
        self.max_message_bits = max_message_bits
        self.rounds = rounds if rounds is not None else len(
            self.messages_per_round)


class FakeNetwork:
    """Just enough of SyncNetwork for a monitor's on_round hook."""

    def __init__(self, n=4, finished=None, crashed=(), byzantine=(),
                 adversary=None, metrics=None, round_no=1):
        self.n = n
        self.finished = dict(finished or {})
        self.crashed = set(crashed)
        self.processes = [FakeProcess(i in set(byzantine)) for i in range(n)]
        self.adversary = adversary or NoCrashes()
        self.metrics = metrics or FakeMetrics()
        self.round_no = round_no
        self.trace = None


class TestInvariantViolation:
    def test_message_and_attributes(self):
        error = InvariantViolation(
            "unique-names", "duplicate 7", round_no=3, nodes=[2, 1],
            detail={"7": [1, 2]},
        )
        assert str(error) == "[unique-names] round 3: duplicate 7"
        assert error.invariant == "unique-names"
        assert error.round_no == 3
        assert error.nodes == (2, 1)
        assert error.detail == {"7": [1, 2]}
        assert isinstance(error, AssertionError)


class TestDecidedCorrect:
    def test_excludes_crashed_and_byzantine(self):
        network = FakeNetwork(
            n=4, finished={0: 1, 1: 2, 2: 3, 3: 4},
            crashed={1}, byzantine={2},
        )
        assert decided_correct(network) == {0: 1, 3: 4}


class TestUniqueNames:
    def test_passes_on_distinct_names(self):
        UniqueNames().on_round(FakeNetwork(finished={0: 1, 1: 2}))

    def test_fails_on_duplicates(self):
        network = FakeNetwork(finished={0: 5, 1: 5, 2: 6}, round_no=4)
        with pytest.raises(InvariantViolation) as info:
            UniqueNames().on_round(network)
        assert info.value.invariant == "unique-names"
        assert info.value.round_no == 4
        assert info.value.nodes == (0, 1)

    def test_crashed_holder_does_not_count(self):
        network = FakeNetwork(finished={0: 5, 1: 5}, crashed={1})
        UniqueNames().on_round(network)

    def test_none_outputs_ignored(self):
        UniqueNames().on_round(FakeNetwork(finished={0: None, 1: None}))


class TestNamespaceBounds:
    def test_contracts(self):
        assert (NamespaceBounds.strong(8).lo,
                NamespaceBounds.strong(8).hi) == (1, 8)
        assert NamespaceBounds.tight(8, 3).hi == 11
        assert NamespaceBounds.loose(8).hi == 64

    def test_in_range_passes(self):
        NamespaceBounds.strong(4).on_round(FakeNetwork(finished={0: 1, 1: 4}))

    @pytest.mark.parametrize("bad", [0, 9, -1, "3", 2.0, True])
    def test_out_of_range_fails(self, bad):
        network = FakeNetwork(n=8, finished={0: 1, 1: bad})
        with pytest.raises(InvariantViolation) as info:
            NamespaceBounds.strong(8).on_round(network)
        assert info.value.invariant == "namespace-bounds"
        assert info.value.nodes == (1,)

    def test_empty_namespace_rejected(self):
        with pytest.raises(ValueError, match="empty namespace"):
            NamespaceBounds(0)


class TestCrashBudget:
    def test_within_budget_passes(self):
        adversary = CrashAdversary(budget=2)
        adversary.crashed = {0}
        CrashBudget().on_round(FakeNetwork(crashed={0}, adversary=adversary))

    def test_budget_overrun(self):
        adversary = CrashAdversary(budget=1)
        adversary.crashed = {0, 1}
        network = FakeNetwork(crashed={0, 1}, adversary=adversary)
        with pytest.raises(InvariantViolation, match="exceed budget"):
            CrashBudget().on_round(network)

    def test_ledger_drift(self):
        adversary = CrashAdversary(budget=4)
        adversary.crashed = {0}
        network = FakeNetwork(crashed={0, 1}, adversary=adversary)
        with pytest.raises(InvariantViolation, match="disagree"):
            CrashBudget().on_round(network)

    def test_revival_detected(self):
        adversary = CrashAdversary(budget=4)
        adversary.crashed = {0}
        monitor = CrashBudget()
        monitor.on_round(FakeNetwork(crashed={0}, adversary=adversary))
        adversary.crashed = set()
        with pytest.raises(InvariantViolation, match="back to life"):
            monitor.on_round(FakeNetwork(crashed=set(), adversary=adversary))


class TestLedgerMonotone:
    def test_growing_ledgers_pass(self):
        monitor = LedgerMonotone()
        monitor.on_round(FakeNetwork(metrics=FakeMetrics([3], [24], 8)))
        monitor.on_round(FakeNetwork(metrics=FakeMetrics([3, 2], [24, 16], 8)))

    def test_decreasing_totals_fail(self):
        monitor = LedgerMonotone()
        monitor.on_round(FakeNetwork(metrics=FakeMetrics([5], [40], 8)))
        with pytest.raises(InvariantViolation, match="decreased"):
            monitor.on_round(FakeNetwork(metrics=FakeMetrics([1], [8], 8)))

    def test_sum_mismatch_fails(self):
        metrics = FakeMetrics([3], [24], 8)
        metrics.total_bits = 99
        with pytest.raises(InvariantViolation, match="sum to"):
            LedgerMonotone().on_round(FakeNetwork(metrics=metrics))

    def test_entry_count_mismatch_fails(self):
        metrics = FakeMetrics([3, 2], [24, 16], 8, rounds=5)
        with pytest.raises(InvariantViolation, match="ledger entries"):
            LedgerMonotone().on_round(FakeNetwork(metrics=metrics))

    def test_shrinking_max_message_fails(self):
        monitor = LedgerMonotone()
        monitor.on_round(FakeNetwork(metrics=FakeMetrics([1], [8], 32)))
        with pytest.raises(InvariantViolation, match="shrank"):
            monitor.on_round(FakeNetwork(metrics=FakeMetrics([1, 1], [8, 8], 8)))


class TestRoundBudget:
    def test_watchdog_fires_before_hard_cap(self):
        cost = CostModel(n=1, namespace=10)
        with pytest.raises(InvariantViolation) as info:
            run_network([IdleProcess(uid=1)], cost, max_rounds=1_000,
                        monitors=(RoundBudget(5),))
        assert info.value.invariant == "round-budget"
        assert info.value.round_no == 6
        assert info.value.nodes == (0,)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="max_rounds"):
            RoundBudget(0)


class TestDefaultSuite:
    def test_composition_and_bounds(self):
        monitors = default_monitors(8, 2, bound="tight")
        names = [monitor.name for monitor in monitors]
        assert names == ["unique-names", "namespace-bounds", "crash-budget",
                         "ledger-monotone", "round-budget"]
        assert monitors[1].hi == 10
        assert monitors[4].max_rounds == default_watchdog_rounds(8)

    def test_unknown_bound_rejected(self):
        with pytest.raises(ValueError, match="unknown bound"):
            default_monitors(8, bound="weird")


class TestScenariosUnderFullSuite:
    """Every real driver must pass the whole monitor suite."""

    @pytest.mark.parametrize("scenario", DEFAULT_SCENARIOS)
    @pytest.mark.parametrize("adversary_kind", ["none", "random",
                                                "partitioner"])
    def test_clean_scenarios_pass(self, scenario, adversary_kind):
        n, f, seed = 8, 2, 1
        spec = resolve_scenario(scenario)
        adversary = make_adversary(adversary_kind, f, seed)
        result = run_scenario(
            scenario, n, f, seed,
            adversary=adversary, monitors=monitors_for(spec, n, f),
        )
        assert len(result.results) == n - len(result.crashed)
        assert len(result.crashed) <= f

    def test_crash_scenario_integration_seed(self):
        # The heavier configuration tests/test_integration.py exercises.
        n, f, seed = 24, 6, 4
        spec = resolve_scenario("crash")
        result = run_scenario(
            "crash", n, f, seed,
            adversary=make_adversary("partitioner", f, seed),
            monitors=monitors_for(spec, n, f),
        )
        assert len(result.results) == n - len(result.crashed)
