"""Per-round ledger accounting and ExecutionResult exclusion semantics.

The engine's run store persists ``messages_per_round``/``bits_per_round``
as the round-resolved ground truth of an execution, so these ledgers
must tie out exactly against the scalar totals.
"""

from dataclasses import dataclass
from random import Random

from repro.analysis.experiments import (
    byzantine_run_summary,
    crash_run_summary,
    default_namespace,
    sample_uids,
)
from repro.core.byzantine_renaming import run_byzantine_renaming
from repro.core.crash_renaming import run_crash_renaming
from repro.adversary import byzantine as byz
from repro.adversary.crash import RandomCrash
from repro.sim.messages import CostModel, Message
from repro.sim.metrics import Metrics
from repro.sim.node import IdleProcess
from repro.sim.runner import ExecutionResult, run_network
from repro.sim.trace import Trace


@dataclass(frozen=True)
class _Blob(Message):
    bits: int

    def payload_bits(self, cost: CostModel) -> int:
        return self.bits


class TestPerRoundLedgers:
    def _crash_result(self, n=12, f=3, seed=4):
        namespace = default_namespace(n)
        uids = sample_uids(n, namespace, Random(seed))
        return run_crash_renaming(
            uids, namespace=namespace,
            adversary=RandomCrash(f, rate=0.1, rng=Random(seed + 1)),
            seed=seed + 2,
        )

    def test_crash_ledgers_sum_to_totals(self):
        metrics = self._crash_result().metrics
        assert sum(metrics.messages_per_round) == metrics.total_messages
        assert sum(metrics.bits_per_round) == metrics.total_bits
        assert len(metrics.messages_per_round) == metrics.rounds
        assert len(metrics.bits_per_round) == metrics.rounds

    def test_byzantine_ledgers_include_byzantine_traffic(self):
        n, seed = 8, 2
        namespace = default_namespace(n)
        uids = sample_uids(n, namespace, Random(seed))
        result = run_byzantine_renaming(
            uids, namespace=namespace,
            byzantine={uids[1]: byz.make_withholder(0.5, salt=seed)},
            shared_seed=seed, seed=seed + 1,
        )
        metrics = result.metrics
        # The per-round ledger records every transmitted message, both
        # ledgers' worth -- correct and Byzantine senders alike.
        assert metrics.byzantine_messages > 0
        assert sum(metrics.messages_per_round) == metrics.total_messages
        assert sum(metrics.bits_per_round) == metrics.total_bits

    def test_max_message_bits_monotone_and_exact(self):
        metrics = Metrics(cost=CostModel(n=4, namespace=16))
        sizes = [10, 3, 25, 25, 7, 40, 1]
        seen_max = 0
        for round_no, size in enumerate(sizes):
            metrics.begin_round()
            metrics.record_send(0, _Blob(size), byzantine=False)
            expected = _Blob(size).bit_size(metrics.cost)
            seen_max = max(seen_max, expected)
            # Monotone: the watermark never decreases...
            assert metrics.max_message_bits == seen_max
        # ...and ends exactly at the largest message transmitted.
        assert metrics.max_message_bits == max(
            _Blob(size).bit_size(metrics.cost) for size in sizes
        )

    def test_include_rounds_rows_match_scalar_totals(self):
        row = crash_run_summary(10, 2, seed=3, include_rounds=True)
        # Crash runs have no Byzantine senders, so the ledger total is
        # exactly the correct-message count the row reports.
        assert sum(row["messages_per_round"]) == row["messages"]
        assert sum(row["bits_per_round"]) == row["bits"]
        assert len(row["messages_per_round"]) == row["rounds"]

    def test_include_rounds_default_off(self):
        row = byzantine_run_summary(8, 1, seed=2, strategy="silent")
        assert "messages_per_round" not in row
        assert "bits_per_round" not in row


class TestOutputsByUidExclusion:
    def test_excludes_both_crashed_and_byzantine(self):
        result = ExecutionResult(
            results={0: "crashed-late", 1: "honest", 2: "junk"},
            metrics=None,
            crashed={0},
            byzantine={2},
            rounds=1,
            trace=Trace(enabled=False),
            processes=[IdleProcess(uid=10), IdleProcess(uid=20),
                       IdleProcess(uid=30)],
        )
        assert result.correct_results == {1: "honest"}
        assert result.outputs_by_uid() == {20: "honest"}

    def test_node_both_crashed_and_byzantine_counted_once(self):
        result = ExecutionResult(
            results={0: "x", 1: "y"},
            metrics=None,
            crashed={0},
            byzantine={0},
            rounds=1,
            trace=Trace(enabled=False),
            processes=[IdleProcess(uid=5), IdleProcess(uid=6)],
        )
        assert result.outputs_by_uid() == {6: "y"}

    def test_live_execution_excludes_byzantine_index(self):
        class FinishingByz(IdleProcess):
            byzantine = True

            def program(self, ctx):
                yield []
                return "forged"

        class Finisher(IdleProcess):
            def program(self, ctx):
                yield []
                return self.uid * 100

        processes = [Finisher(uid=1), FinishingByz(uid=2), Finisher(uid=3)]
        result = run_network(processes, CostModel(n=3, namespace=10))
        assert set(result.outputs_by_uid()) == {1, 3}
        assert result.outputs_by_uid() == {1: 100, 3: 300}
